// procd: a single-threaded, poll-driven daemon exporting the process file
// system to remote controllers over a length-prefixed frame protocol.
//
// The paper's claim is that /proc makes process control an ordinary
// file-descriptor protocol; procd is that claim stretched over a wire. Each
// connected peer gets its own descriptor table — a native controller
// process inside the served kernel — so every open the peer performs is a
// real /proc open, counted in the real ledgers, subject to the real O_EXCL
// and run-on-last-close rules. Peer lifetime follows gfarm's gfmd model
// (process_attach_peer / process_detach_peer): attach creates the
// controller, detach destroys it, and a detach at *any* point — orderly
// hangup or the PEER_DISCONNECT chaos site firing mid-operation — is
// equivalent to the peer closing every descriptor it held, because teardown
// is Kernel::DestroyNativeProc and that runs every vnode Close hook.
//
// Transport is an in-memory duplex byte channel (deterministic, and cheap
// enough that a bench can hold 10k peers); the frame codec is the part a
// socket transport would reuse unchanged.
//
// Blocking control operations (PIOCSTOP / PIOCWSTOP and the PCSTOP /
// PCWSTOP messages inside a batched ctl write) never block the daemon:
// the directive half executes immediately, the wait half is parked, and
// every Pump() re-evaluates parked waits against the same completion rules
// as Kernel::PrWaitStop (target gone: ENOENT; stopped: done; simulation
// idle: EDEADLK). A ctl write parked mid-stream keeps its unexecuted tail
// as a continuation, preserving batched-write semantics.
#ifndef SVR4PROC_PROCD_PROCD_H_
#define SVR4PROC_PROCD_PROCD_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "svr4proc/kernel/kernel.h"
#include "svr4proc/kernel/ktrace.h"

namespace svr4 {

// --- Wire protocol -----------------------------------------------------------

// Request/reply/push operation codes. Every client frame gets exactly one
// reply frame with the same tag; kEvent frames (tag 0) are pushed to
// subscribed peers between replies.
enum class PdOp : uint16_t {
  kHello = 1,       // -> {}                                <- {i32 peer_pid}
  kOpen,            // -> {i32 oflags, path}                <- {i32 fd}
  kClose,           // -> {i32 fd}                          <- {}
  kRead,            // -> {i32 fd, u32 n}                   <- {bytes}
  kPread,           // -> {i32 fd, u64 off, u32 n}          <- {bytes}
  kWrite,           // -> {i32 fd, bytes}                   <- {i64 n}
  kLseek,           // -> {i32 fd, i64 off, i32 whence}     <- {i64 pos}
  kIoctl,           // -> {i32 fd, u32 op, u32 in_len, u32 out_cap, in}
                    //                                      <- {i32 rv, out}
  kPsall,           // -> {i32 fd, i32 start, u32 limit}
                    //                  <- {i32 next_pid, u32 n, PrPsinfo[n]}
  kReadDirChunk,    // -> {u64 cookie, u32 max, path}
                    //        <- {u64 cookie, u32 n, n * {u8 type, u16 len, name}}
  kStat,            // -> {path}                            <- {VAttr fields}
  kPoll,            // -> {i64 timeout, u32 n, n * {i32 fd, i32 events}}
                    //                  <- {i32 ready, u32 n, n * {i32 revents}}
  kSubscribe,       // -> {i32 fd, i32 events}              <- {}
  kUnsubscribe,     // -> {i32 fd}                          <- {}
  kSpawn,           // -> {u32 ruid, u32 rgid, path, u32 argc, argv...}
                    //                                      <- {i32 pid}
  kStats,           // -> {}        <- {bytes: the server's StatsText()}
  kEvent = 100,     // push: {i32 fd, i32 revents} — a subscribed fd's poll
                    //       state changed (level captured at push time)
};

// Lowercase op mnemonic for stats keys ("ioctl", "psall", ...).
const char* PdOpName(PdOp op);

// Frame: 12-byte header + body_len bytes of body.
struct PdFrameHdr {
  uint32_t body_len = 0;
  uint16_t op = 0;
  uint16_t flags = 0;  // kPdErrFlag: body is {i32 errno}
  uint32_t tag = 0;
};
inline constexpr uint16_t kPdErrFlag = 1;

struct PdFrame {
  PdFrameHdr hdr;
  std::vector<uint8_t> body;
};

// One direction of a connection: an in-memory byte stream.
class PdChannel {
 public:
  void Append(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  // Extracts the next complete frame; false when none is buffered.
  bool NextFrame(PdFrame* out) {
    if (buf_.size() - rd_ < sizeof(PdFrameHdr)) {
      Compact();
      return false;
    }
    PdFrameHdr h;
    std::memcpy(&h, buf_.data() + rd_, sizeof(h));
    if (buf_.size() - rd_ < sizeof(h) + h.body_len) {
      return false;
    }
    out->hdr = h;
    out->body.assign(buf_.begin() + static_cast<long>(rd_ + sizeof(h)),
                     buf_.begin() + static_cast<long>(rd_ + sizeof(h) + h.body_len));
    rd_ += sizeof(h) + h.body_len;
    Compact();
    return true;
  }
  bool HasFrame() const { return buf_.size() - rd_ >= sizeof(PdFrameHdr); }
  bool empty() const { return rd_ == buf_.size(); }

 private:
  void Compact() {
    if (rd_ == buf_.size()) {
      buf_.clear();
      rd_ = 0;
    }
  }
  std::vector<uint8_t> buf_;
  size_t rd_ = 0;
};

// Little-endian-in-host-order body builder/reader (both ends live in one
// process; a socket transport would pin byte order here).
class PdWriter {
 public:
  template <typename T>
  PdWriter& Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
    return *this;
  }
  PdWriter& PutBytes(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
    return *this;
  }
  PdWriter& PutString(const std::string& s) {
    Put<uint32_t>(static_cast<uint32_t>(s.size()));
    return PutBytes(s.data(), s.size());
  }
  std::vector<uint8_t>& bytes() { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

class PdReader {
 public:
  explicit PdReader(const std::vector<uint8_t>& b) : b_(&b) {}
  template <typename T>
  bool Get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (b_->size() - off_ < sizeof(T)) {
      return false;
    }
    std::memcpy(v, b_->data() + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t n = 0;
    if (!Get(&n) || b_->size() - off_ < n) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(b_->data() + off_), n);
    off_ += n;
    return true;
  }
  const uint8_t* Raw(size_t n) {
    if (b_->size() - off_ < n) {
      return nullptr;
    }
    const uint8_t* p = b_->data() + off_;
    off_ += n;
    return p;
  }
  size_t remaining() const { return b_->size() - off_; }

 private:
  const std::vector<uint8_t>* b_;
  size_t off_ = 0;
};

void PdWriteFrame(PdChannel& ch, PdOp op, uint16_t flags, uint32_t tag,
                  const std::vector<uint8_t>& body);
void PdWriteError(PdChannel& ch, PdOp op, uint32_t tag, Errno e);

// --- Connection --------------------------------------------------------------

class ProcdServer;

// The duplex transport shared by one peer and the server. The client owns
// one reference; the server's peer entry owns the other.
struct ProcdConn {
  PdChannel c2s;  // client -> server
  PdChannel s2c;  // server -> client
  bool client_closed = false;  // client hung up (orderly)
  bool server_closed = false;  // server detached the peer (hangup or chaos)
  uint64_t id = 0;
  ProcdServer* server = nullptr;
};

// --- Server ------------------------------------------------------------------

class ProcdServer {
 public:
  explicit ProcdServer(Kernel& k);
  ~ProcdServer();

  ProcdServer(const ProcdServer&) = delete;
  ProcdServer& operator=(const ProcdServer&) = delete;

  // Attaches a peer: creates its native controller process (its descriptor
  // table) and returns the transport to hand to a RemoteProcIo.
  std::shared_ptr<ProcdConn> Connect(const Creds& creds,
                                     const std::string& name = "procd-peer");

  // One service round: fires the PEER_DISCONNECT chaos site, drains peer
  // frames (parking blocking ops instead of pumping inline), re-evaluates
  // parked waits, pushes subscription events, and — when parked waits are
  // the only pending work — advances the simulation one Step. Returns
  // whether anything progressed; a false return means the daemon is fully
  // idle. Clients' blocking calls drive this in a loop.
  bool Pump();

  size_t PeerCount() const { return live_peers_; }
  Kernel& kernel() { return *kernel_; }

  struct Stats {
    uint64_t frames_in = 0;          // request frames processed
    uint64_t ctl_ops = 0;            // control operations dispatched
    uint64_t events_pushed = 0;      // kEvent frames sent
    uint64_t disconnects = 0;        // peers detached (all causes)
    uint64_t chaos_disconnects = 0;  // ... of which PEER_DISCONNECT fired
    uint64_t pump_rounds = 0;        // Pump() invocations
    uint64_t peer_scans = 0;         // live peers scanned across all rounds
  };
  const Stats& stats() const { return stats_; }

  // RPC span accounting. Frame/op/park counters are always on (and always
  // updated at frame *dequeue*, before dispatch, so a kStats reply counts
  // the request that asked for it and a local /proc2/kernel/procd read
  // right after a remote one renders identical text). The latency, size,
  // and occupancy histograms are recorded only when spans are armed — the
  // latency axis is host wall-clock nanoseconds, because virtual ticks
  // freeze while only native peers act, so ticks would read all-zero for
  // exactly the RPC-bound workloads spans exist to attribute. Recording
  // never touches simulation state, so arming spans cannot perturb a
  // chaos run.
  void EnableSpans(bool on) { spans_on_ = on; }
  bool spans_enabled() const { return spans_on_; }

  // Per-op span stats (count/parks always; hists while armed).
  struct OpSpan {
    uint64_t count = 0;  // frames dequeued for this op
    uint64_t parks = 0;  // ... of which parked before replying
    KtHist lat_ns;       // dequeue -> reply, host nanoseconds
    KtHist bytes;        // request body length
    KtHist park_ticks;   // park -> completion, virtual ticks
  };
  // Op slot space: 1..17 are request ops, slot 0 absorbs unknown codes.
  static constexpr int kPdOpSlots = static_cast<int>(PdOp::kStats) + 1;
  const OpSpan& op_span(PdOp op) const {
    int i = static_cast<int>(op);
    return spans_[i > 0 && i < kPdOpSlots ? i : 0];
  }

  // The whole registry rendered as `key value` metrics text, served by
  // /proc2/kernel/procd (via Kernel::SetProcdStatsProvider) and the kStats
  // RPC. Same line grammar as /proc2/kernel/metrics.
  std::string StatsText() const;

 private:
  struct Peer {
    std::shared_ptr<ProcdConn> conn;
    Proc* proc = nullptr;  // the peer's descriptor table
    bool dead = false;

    // At most one parked blocking operation; while parked, later frames
    // from this peer stay queued in the channel (FIFO order preserved).
    enum class Wait : uint8_t { kNone, kStopWait, kPoll };
    Wait wait = Wait::kNone;
    PdOp wait_op = PdOp::kHello;  // op code for the eventual reply frame
    uint32_t wait_tag = 0;
    Pid wait_pid = -1;            // stop-wait: the target process
    uint32_t wait_out_cap = 0;    // flat PIOCWSTOP/PIOCSTOP: PrStatus reply?
    int wait_fd = -1;             // ctl-stream continuation descriptor
    std::vector<uint8_t> wait_cont;  // unexecuted ctl-stream tail
    int64_t wait_consumed = 0;       // stream bytes already accepted
    std::vector<PollFd> wait_pfds;   // parked poll set
    uint64_t wait_deadline = 0;      // poll: 0 = no timeout
    // Subscriptions: fd -> {events mask, last pushed revents}.
    std::map<int32_t, std::pair<int32_t, int32_t>> subs;

    // Per-peer span counters (always on, dequeue-time like the globals).
    uint64_t frames = 0;
    uint64_t ctl_ops = 0;
    uint64_t parks = 0;
    // In-flight span stamps; at most one frame is between dequeue and
    // reply per peer (parked ops carry these across pump rounds).
    uint64_t frame_start_ns = 0;  // dequeue wall clock (spans armed only)
    uint64_t park_start_tick = 0; // first park tick of the current frame
  };

  bool HandleFrame(Peer& peer, const PdFrame& f);
  void HandleOpen(Peer& peer, uint32_t tag, PdReader& r);
  void HandleRead(Peer& peer, uint32_t tag, PdReader& r, bool pread);
  void HandleWrite(Peer& peer, uint32_t tag, PdReader& r);
  void HandleIoctl(Peer& peer, uint32_t tag, PdReader& r);
  void HandlePsall(Peer& peer, uint32_t tag, PdReader& r);
  void HandlePoll(Peer& peer, uint32_t tag, PdReader& r);
  void HandleSpawn(Peer& peer, uint32_t tag, PdReader& r);

  // Runs a ctl-message stream for a parked-capable write: executes
  // non-blocking prefixes through the kernel, parks at the first blocking
  // message. Returns true if the peer parked (no reply yet).
  bool RunCtlWrite(Peer& peer, uint32_t tag, int fd, std::vector<uint8_t> stream,
                   int64_t consumed);

  // Parked-wait machinery.
  bool TryCompleteWait(Peer& peer, bool idle);
  void ReplyStopWait(Peer& peer, Errno e, bool ok);
  int EvalPoll(Peer& peer, std::vector<PollFd>& pfds);
  bool PushEvents(Peer& peer);

  void Detach(Peer& peer, bool chaos);

  // Span bookkeeping around one frame's dispatch: SpanDequeue at frame
  // dequeue (counters always; stamps when armed), SpanPark when the op
  // parks, SpanReply when the reply frame for the current frame has been
  // written (immediate or parked-completion path).
  void SpanDequeue(Peer& peer, const PdFrame& f);
  void SpanPark(Peer& peer, PdOp op);
  void SpanReply(Peer& peer, PdOp op);

  Kernel* kernel_;
  std::vector<std::unique_ptr<Peer>> peers_;
  size_t live_peers_ = 0;
  uint64_t next_conn_id_ = 1;
  Stats stats_;

  bool spans_on_ = false;
  std::array<OpSpan, kPdOpSlots> spans_{};
  KtHist parked_peers_;  // parked-wait occupancy, sampled once per round
};

}  // namespace svr4

#endif  // SVR4PROC_PROCD_PROCD_H_
