// The procd client: a ProcIo transport that ships every operation to a
// ProcdServer as a wire frame. proclib/truss/ps/dbx run unmodified over
// this — the paper's "ordinary descriptors" claim, stretched over a wire.
#ifndef SVR4PROC_PROCD_CLIENT_H_
#define SVR4PROC_PROCD_CLIENT_H_

#include <deque>
#include <memory>

#include "svr4proc/procd/procd.h"
#include "svr4proc/tools/procio.h"

namespace svr4 {

class RemoteProcIo : public ProcIo {
 public:
  explicit RemoteProcIo(std::shared_ptr<ProcdConn> conn) : conn_(std::move(conn)) {}
  ~RemoteProcIo() override { Hangup(); }

  RemoteProcIo(const RemoteProcIo&) = delete;
  RemoteProcIo& operator=(const RemoteProcIo&) = delete;

  // Orderly hangup: the server detaches the peer on its next Pump, closing
  // every descriptor the peer held.
  void Hangup();
  bool connected() const { return conn_ != nullptr && !conn_->server_closed; }

  // The pid of this peer's controller process inside the served kernel.
  Result<Pid> PeerPid();

  // The server's span/stats registry as metrics text (the same text
  // /proc2/kernel/procd serves locally). One kStats frame.
  Result<std::string> ProcdStats();

  Result<int> Open(const std::string& path, int oflags) override;
  Result<void> Close(int fd) override;
  Result<int64_t> Read(int fd, void* buf, uint64_t n) override;
  Result<int64_t> Write(int fd, const void* buf, uint64_t n) override;
  Result<int64_t> Lseek(int fd, int64_t off, int whence) override;
  Result<int32_t> Ioctl(int fd, uint32_t op, void* arg) override;
  Result<std::vector<DirEnt>> ReadDir(const std::string& path) override;
  Result<size_t> ReadDirChunk(const std::string& path, uint64_t* cookie, size_t max,
                              std::vector<DirEnt>* out) override;
  Result<VAttr> Stat(const std::string& path) override;
  Result<int> PollFds(std::span<PollFd> fds, int64_t timeout_ticks) override;
  Result<Pid> Spawn(const std::string& path, const std::vector<std::string>& argv,
                    const Creds& creds) override;

  // Event push: subscribes a descriptor's poll state; the server pushes a
  // kEvent frame whenever the level changes. Events queue locally until
  // drained with NextEvent.
  struct Event {
    int32_t fd = 0;
    int32_t revents = 0;
  };
  Result<void> Subscribe(int fd, int events);
  Result<void> Unsubscribe(int fd);
  bool NextEvent(Event* out);
  // Lets queued pushes arrive without issuing a request: pumps the server
  // once and drains any frames.
  void Poke();

 private:
  // Sends one request and pumps the server until its tagged reply arrives.
  // Pushed kEvent frames encountered on the way are queued.
  Result<PdFrame> Call(PdOp op, std::vector<uint8_t> body);
  void DrainPushed();

  std::shared_ptr<ProcdConn> conn_;
  std::deque<Event> events_;
  uint32_t next_tag_ = 1;
};

}  // namespace svr4

#endif  // SVR4PROC_PROCD_CLIENT_H_
