// truss(1): traces the execution of a process, "producing a symbolic report
// of the system calls it executes, the faults it encounters and the signals
// it receives". Built on syscall entry/exit interception through /proc;
// optionally follows child processes via inherit-on-fork.
#ifndef SVR4PROC_TOOLS_TRUSS_H_
#define SVR4PROC_TOOLS_TRUSS_H_

#include <map>
#include <string>
#include <vector>

#include "svr4proc/tools/proclib.h"

namespace svr4 {

// Renders a control audit ring snapshot (PIOCAUDIT / /proc2/<pid>/ctlaudit)
// as a symbolic report, one line per record: operation, caller, lwp,
// result, tick. The observability counterpart of the syscall trace.
std::string FormatCtlAudit(const PrCtlAudit& a);

struct TrussOptions {
  bool follow_fork = false;   // -f: trace children as they are created
  bool counts_only = false;   // -c: summary table instead of a line per call
  SysSet filter;              // -t: trace only these syscalls (empty: all)
  uint64_t max_events = 100000;  // safety valve
};

class Truss {
 public:
  // In-process form (wraps the kernel in an owned LocalProcIo) and the
  // transport-generic form: a Truss over procd's RemoteProcIo traces
  // processes on a remote kernel with the same code paths.
  Truss(Kernel& k, Proc* caller, TrussOptions opts = {});
  Truss(ProcIo& io, TrussOptions opts = {});

  // Traces the process until it (and, with -f, all its traced descendants)
  // exits. The report accumulates in report().
  Result<void> Trace(Pid pid);

  // "truss can be applied to running processes or used to start up commands
  // to be traced": spawns the command with tracing armed before it executes
  // its first instruction, then traces it to completion.
  Result<void> TraceCommand(const std::string& path, const std::vector<std::string>& argv,
                            const Creds& creds = Creds::Root());

  const std::string& report() const { return report_; }
  const std::map<int, uint64_t>& syscall_counts() const { return counts_; }
  uint64_t events() const { return events_; }

  // Formats the -c style summary table. When the kernel metrics registry
  // was armed for the trace, each row carries count, error count, and
  // average/max entry->exit latency in ticks, computed as registry deltas
  // across the trace window; otherwise it falls back to truss's own event
  // counts.
  std::string CountsTable() const;

 private:
  // Applies the tracing sets to a newly grabbed process.
  Result<void> Arm(ProcHandle& h);
  // Handles one stop of one tracee; may add new tracees (fork exits).
  Result<void> HandleStop(ProcHandle& h);
  void Emit(Pid pid, const std::string& line);

  std::unique_ptr<ProcIo> owned_io_;
  ProcIo* io_;
  TrussOptions opts_;
  std::map<Pid, ProcHandle> tracees_;
  std::string report_;
  std::map<int, uint64_t> counts_;
  uint64_t events_ = 0;
  // Registry snapshots bracketing the trace, for the -c latency columns.
  PrKstat kstat_base_;
  PrKstat kstat_end_;
  bool kstat_valid_ = false;
};

}  // namespace svr4

#endif  // SVR4PROC_TOOLS_TRUSS_H_
