// ps(1) implemented over /proc, exactly as the paper describes: "read the
// /proc directory, open each process file in turn, issue the PIOCPSINFO
// request, close the file, and print the result ... Because all the
// information for a process is obtained in a single operation, each line of
// ps output is a true snapshot of the process."
#ifndef SVR4PROC_TOOLS_PS_H_
#define SVR4PROC_TOOLS_PS_H_

#include <string>
#include <vector>

#include "svr4proc/kernel/kernel.h"
#include "svr4proc/procfs/types.h"
#include "svr4proc/tools/procio.h"

namespace svr4 {

struct PsOptions {
  bool full = false;  // -f: add PPID, STIME, ARGS
};

// One PIOCPSINFO snapshot per visible process. Opens are read-only, so
// "the opens always succeed and no interference is created for controlling
// and controlled processes" (when the caller is privileged). Enumerates the
// directory with the chunked-readdir cursor, so the walk is O(live procs)
// even over a huge population. Each function has a transport-generic ProcIo
// form — ps against a remote procd is the same code — and the historical
// in-process form.
Result<std::vector<PrPsinfo>> PsSnapshot(ProcIo& io);
Result<std::vector<PrPsinfo>> PsSnapshot(Kernel& k, Proc* caller);

// The bulk path: one PIOCPSALL on a single handle returns the whole
// population. At 10^5+ processes this is the only shape that keeps ps O(n)
// — the per-pid loop pays open+ioctl+close per process.
Result<std::vector<PrPsinfo>> PsSnapshotAll(ProcIo& io, Pid handle_pid);
Result<std::vector<PrPsinfo>> PsSnapshotAll(Kernel& k, Proc* caller);

// Formats the classic listing.
Result<std::string> PsFormat(ProcIo& io, const PsOptions& opts = {});
Result<std::string> PsFormat(Kernel& k, Proc* caller, const PsOptions& opts = {});

// Renders Figure 1 of the paper: "ls -l /proc".
Result<std::string> LsProc(ProcIo& io);
Result<std::string> LsProc(Kernel& k, Proc* caller);

}  // namespace svr4

#endif  // SVR4PROC_TOOLS_PS_H_
