// A breakpoint debugger built on /proc — the "sophisticated debugger" the
// interface was designed to facilitate. Demonstrates:
//  * breakpoints planted with address-space writes (BPT, the approved
//    1-byte breakpoint instruction), fielded as FLTBPT faults — "machine
//    faults are not used for inter-process communication and cannot be
//    intercepted or held by a process; stop-on-fault is the preferred
//    method for fielding breakpoints";
//  * conditional breakpoints evaluated debugger-side, the workload for
//    which "breakpoints per second is a realistic measure of performance";
//  * symbol tables located at run time through PIOCOPENM, without
//    pathnames;
//  * single-stepping via PRSTEP/FLTTRACE and data watchpoints via the
//    proposed watchpoint facility;
//  * the ability to grab and debug an existing process (which the paper
//    notes sdb gained when rewritten over /proc).
#ifndef SVR4PROC_TOOLS_DEBUGGER_H_
#define SVR4PROC_TOOLS_DEBUGGER_H_

#include <functional>
#include <map>
#include <string>

#include "svr4proc/isa/aout.h"
#include "svr4proc/tools/proclib.h"

namespace svr4 {

class Debugger {
 public:
  struct StopInfo {
    enum Kind { kBreakpoint, kWatchpoint, kSignal, kFault, kSyscall, kExited };
    Kind kind = kExited;
    uint32_t addr = 0;      // breakpoint/watchpoint address
    int what = 0;           // signal, fault, or syscall number
    std::string symbol;     // nearest symbol for addr, if known
    PrStatus status;        // full status at the stop
    int exit_status = 0;    // valid when kind == kExited
  };

  // Condition evaluated by the debugger at a conditional breakpoint; the
  // target resumes silently when it returns false.
  using Condition = std::function<bool(const PrStatus&)>;

  Debugger(Kernel& k, Proc* controller) : kernel_(&k), controller_(controller) {}

  // Grabs an existing process (it is stopped) and loads its symbol table
  // through PIOCOPENM.
  Result<void> Attach(Pid pid);
  // Lifts breakpoints, clears tracing, and sets the process running.
  Result<void> Detach();

  bool attached() const { return handle_.has_value(); }
  ProcHandle& handle() { return *handle_; }
  const Aout& symbols() const { return symbols_; }

  // --- symbols ---
  Result<uint32_t> Lookup(const std::string& name) const;
  std::string SymbolAt(uint32_t addr) const;

  // --- breakpoints ---
  Result<void> SetBreakpoint(uint32_t addr);
  Result<void> SetBreakpoint(const std::string& symbol);
  Result<void> SetConditionalBreakpoint(uint32_t addr, Condition cond);
  Result<void> ClearBreakpoint(uint32_t addr);
  bool HasBreakpoint(uint32_t addr) const { return breakpoints_.count(addr) != 0; }

  // --- watchpoints ---
  Result<void> WatchVariable(const std::string& symbol, uint32_t size, int wflags);
  Result<void> UnwatchVariable(const std::string& symbol);

  // --- execution ---
  // Resumes until the next reportable stop (breakpoint whose condition
  // holds, watchpoint, signal, fault) or exit. Unsatisfied conditional
  // breakpoints are stepped over transparently.
  Result<StopInfo> Continue();
  // Executes exactly one instruction.
  Result<PrStatus> StepInstruction();

  // --- forced syscall execution ---
  // "A debugger can force a process to execute system calls on the
  // debugger's behalf without the process's knowledge or consent." Plants a
  // SYS instruction at the stopped pc (COW-safe), loads the argument
  // registers, runs to the syscall exit stop, collects the result, and
  // restores everything. The target must be stopped on an event of
  // interest; it is left stopped exactly where it was.
  Result<uint32_t> InjectSyscall(int num, const std::vector<uint32_t>& args);

  // --- data access by symbol ---
  Result<uint32_t> ReadWord(const std::string& symbol_or_empty, uint32_t addr = 0);
  Result<void> WriteWord(const std::string& symbol_or_empty, uint32_t value,
                         uint32_t addr = 0);

  // Disassembles `count` instructions starting at addr.
  Result<std::string> Disassemble(uint32_t addr, int count);

  uint64_t breakpoint_evaluations() const { return bp_evaluations_; }

 private:
  struct Breakpoint {
    uint8_t saved_byte = 0;
    Condition cond;  // empty: unconditional
  };

  Result<void> PlantAll();
  Result<void> LiftAll();
  // Steps over the breakpoint at the current pc (lift, single-step, replant).
  Result<void> StepOverBreakpoint(uint32_t addr);
  StopInfo Classify(const PrStatus& st);

  Kernel* kernel_;
  Proc* controller_;
  std::optional<ProcHandle> handle_;
  Aout symbols_;
  std::map<uint32_t, Breakpoint> breakpoints_;
  uint64_t bp_evaluations_ = 0;
};

}  // namespace svr4

#endif  // SVR4PROC_TOOLS_DEBUGGER_H_
