// Sim: a convenience harness bundling a Kernel with both process file
// systems mounted, an assembler preloaded with syscall/signal symbols, and
// helpers to install and start programs. Examples, tests, and benchmarks
// build on this.
#ifndef SVR4PROC_TOOLS_SIM_H_
#define SVR4PROC_TOOLS_SIM_H_

#include <memory>
#include <string>
#include <vector>

#include "svr4proc/isa/assembler.h"
#include "svr4proc/kernel/kernel.h"

namespace svr4 {

class Sim {
 public:
  Sim();

  Kernel& kernel() { return *kernel_; }

  // An assembler with SYS_*/SIG* symbols predefined.
  Assembler NewAssembler(AsmOptions opts = {}) const;

  // Assembles `source` and installs the a.out at `path`. Returns the image.
  Result<Aout> InstallProgram(const std::string& path, const std::string& source,
                              uint32_t mode = 0755, Uid uid = 0, Gid gid = 0);
  // Assembles a shared library (text based at lib_base) into /lib/<name>.
  Result<Aout> InstallLibrary(const std::string& name, const std::string& source,
                              uint32_t lib_base = 0xC0100000);

  // Spawns the program; the new process is a child of init.
  Result<Pid> Start(const std::string& path,
                    const std::vector<std::string>& argv = {},
                    const Creds& creds = Creds::Root());

  // A super-user native controller ("the debugger side" of examples/tests).
  Proc* controller() { return controller_; }
  // Creates an additional native controller with the given credentials.
  Proc* NewController(const Creds& creds, const std::string& name);

  // Console output captured from the simulated processes.
  const std::string& ConsoleOutput() { return kernel_->console().output(); }

 private:
  std::unique_ptr<Kernel> kernel_;
  Proc* controller_ = nullptr;
};

}  // namespace svr4

#endif  // SVR4PROC_TOOLS_SIM_H_
