// A dbx-flavoured command interpreter over the Debugger library — the paper
// notes "the standard debuggers sdb(1) and dbx(1) have been rewritten in
// SVR4 to use /proc (and, for sdb, to add a few new capabilities, such as
// the ability to grab and debug an existing process)". This shell provides
// the classic command surface for scripted sessions and the debugger
// example.
//
// Commands:
//   stop at <sym|0xADDR>                breakpoint
//   stop at <sym> if r<N> <op> <val>    conditional breakpoint
//                                       (<op>: == != < > <= >=)
//   watch <sym>                         write watchpoint on a word
//   unwatch <sym>
//   delete <sym|0xADDR>                 remove a breakpoint
//   cont                                continue; reports the next stop
//   step [n]                            single-step n instructions
//   regs                                register dump
//   print <sym|0xADDR>                  word at address
//   assign <sym> = <value>              write a word
//   dis [<sym|0xADDR>] [n]              disassemble
//   where                               stack trace
//   status                              prstatus summary
//   audit                               control audit ring (who did what)
//   syscall <name> [args...]            force the target to execute a call
//   kill                                SIGKILL the target
//   detach                              release the target
#ifndef SVR4PROC_TOOLS_DBX_SHELL_H_
#define SVR4PROC_TOOLS_DBX_SHELL_H_

#include <string>

#include "svr4proc/tools/debugger.h"

namespace svr4 {

class DbxShell {
 public:
  DbxShell(Kernel& k, Proc* controller) : dbg_(k, controller) {}

  Result<void> Attach(Pid pid) { return dbg_.Attach(pid); }

  // Executes one command line and returns the textual result ("dbx> "
  // prompt and echo are the caller's business).
  std::string Command(const std::string& line);

  // Runs a newline-separated script, echoing each command, and returns the
  // whole transcript.
  std::string Script(const std::string& script);

  Debugger& debugger() { return dbg_; }

  // Heuristic stack trace: the current pc plus return-address candidates
  // found on the stack (words pointing into executable mappings).
  std::vector<uint32_t> Backtrace(int max_frames = 8);

 private:
  std::string CmdStopAt(const std::vector<std::string>& args);
  std::string CmdCont();
  std::string CmdStep(const std::vector<std::string>& args);
  std::string CmdRegs();
  std::string CmdPrint(const std::vector<std::string>& args);
  std::string CmdAssign(const std::vector<std::string>& args);
  std::string CmdDis(const std::vector<std::string>& args);
  std::string CmdWhere();
  std::string CmdStatus();
  std::string CmdAudit();
  std::string CmdSyscall(const std::vector<std::string>& args);

  Result<uint32_t> ResolveAddr(const std::string& tok);

  Debugger dbg_;
};

}  // namespace svr4

#endif  // SVR4PROC_TOOLS_DBX_SHELL_H_
