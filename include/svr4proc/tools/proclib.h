// proclib: a typed controlling-process library over the flat /proc
// interface. Debuggers, ps, truss, and the examples are built on this; it
// plays the role of the libproc layer that grew around SVR4 /proc.
#ifndef SVR4PROC_TOOLS_PROCLIB_H_
#define SVR4PROC_TOOLS_PROCLIB_H_

#include <memory>
#include <string>
#include <vector>

#include "svr4proc/kernel/kernel.h"
#include "svr4proc/kernel/ktrace.h"
#include "svr4proc/procfs/types.h"
#include "svr4proc/tools/procio.h"

namespace svr4 {

// A parsed /proc2/<pid>/trace (or /proc2/kernel/trace) snapshot.
struct PrTrace {
  KtSnapHeader hdr{};
  std::vector<KtRec> recs;
};

// A controlling process's grip on one target process: an open descriptor on
// /proc/<pid> plus typed wrappers for the PIOC* operations.
class ProcHandle {
 public:
  // Opens /proc/<pid>. oflags O_RDWR for control, O_RDONLY for inspection,
  // O_RDWR|O_EXCL for exclusive control. The in-process form wraps the
  // kernel in an owned LocalProcIo; the ProcIo form works over any
  // transport (procd's RemoteProcIo included) and must outlive the handle.
  static Result<ProcHandle> Grab(Kernel& k, Proc* controller, Pid pid,
                                 int oflags = O_RDWR);
  static Result<ProcHandle> Grab(ProcIo& io, Pid pid, int oflags = O_RDWR);

  ProcHandle(ProcHandle&& o) noexcept;
  ProcHandle& operator=(ProcHandle&& o) noexcept;
  ProcHandle(const ProcHandle&) = delete;
  ProcHandle& operator=(const ProcHandle&) = delete;
  ~ProcHandle();

  void Close();
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  Pid pid() const { return pid_; }

  // --- status & control ---
  Result<PrStatus> Status();
  Result<void> Stop();                    // direct to stop and wait
  Result<void> WaitStop();                // wait for a stop
  Result<void> Run(const PrRun& r = {});  // resume
  Result<void> RunClearSig();
  Result<void> RunClearFault();
  Result<void> Step();  // PRSTEP: execute one instruction and stop

  // --- events of interest ---
  Result<void> SetSigTrace(const SigSet& s);
  Result<SigSet> GetSigTrace();
  Result<void> SetFltTrace(const FltSet& f);
  Result<FltSet> GetFltTrace();
  Result<void> SetSysEntry(const SysSet& s);
  Result<SysSet> GetSysEntry();
  Result<void> SetSysExit(const SysSet& s);
  Result<SysSet> GetSysExit();

  // --- signals ---
  Result<void> Kill(int sig);
  Result<void> Unkill(int sig);
  Result<void> SetCurSig(const SigInfo& info);
  Result<void> ClearCurSig();
  Result<void> ClearCurFault();
  Result<SigSet> GetHold();
  Result<void> SetHold(const SigSet& s);
  Result<std::vector<SigAction>> GetActions();

  // --- modes ---
  Result<void> SetInheritOnFork(bool on);
  Result<void> SetRunOnLastClose(bool on);

  // --- registers ---
  Result<Regs> GetRegs();
  Result<void> SetRegs(const Regs& r);
  Result<FpRegs> GetFpRegs();
  Result<void> SetFpRegs(const FpRegs& r);

  // --- address space ---
  Result<int64_t> ReadMem(uint32_t vaddr, void* buf, uint64_t n);
  Result<int64_t> WriteMem(uint32_t vaddr, const void* buf, uint64_t n);
  Result<std::vector<PrMapEntry>> GetMap();
  // Read-only descriptor for the object mapped at vaddr (the executable
  // when use_exe): symbol tables without pathnames.
  Result<int> OpenMappedObject(bool use_exe, uint32_t vaddr = 0);

  // --- identity / accounting ---
  Result<PrPsinfo> Psinfo();
  Result<PrCred> Cred();
  Result<PrUsage> Usage();
  Result<PrVmStats> VmStats();
  Result<PrCtlAudit> Audit();  // the control audit ring (PIOCAUDIT)
  Result<PrKstat> Kstat();     // kernel-wide metrics registry (PIOCKSTAT)
  // Bulk ps info for the whole population, one operation (PIOCPSALL). The
  // handle's own target is just the descriptor the request rides on.
  Result<std::vector<PrPsinfo>> PsinfoAll();
  // The target's slice of the kernel event ring, read from
  // /proc2/<pid>/trace. Works on zombies, and keeps working after the
  // target is reaped as long as records survive in the ring.
  Result<PrTrace> Trace();
  Result<void> Nice(int delta);

  // --- profiling (PIOCPROF / /proc2/<pid>/prof) ---
  // Arms the deterministic pc sampler: one sample per 2^period_log2 user
  // instructions. Disarm keeps the accumulated buckets readable.
  Result<void> SetProf(int period_log2);
  Result<void> ClearProf();
  // The accumulated samples as folded-stack text ("name;0xPC count"
  // lines), ready for standard flamegraph tooling.
  Result<std::string> Prof();

  // --- proposed extensions ---
  Result<void> SetWatch(const PrWatch& w);
  Result<void> ClearWatch(uint32_t vaddr);
  Result<std::vector<PrWatch>> GetWatches();
  Result<PrPageData> PageData(bool clear);
  Result<PrLwpIds> LwpIds();

  // The transport this handle rides on; local_kernel()/local_proc() are
  // null when it is remote.
  ProcIo& io() { return *io_; }

 private:
  ProcHandle(std::unique_ptr<ProcIo> owned, ProcIo* io, Pid pid, int fd)
      : owned_io_(std::move(owned)), io_(io), pid_(pid), fd_(fd) {}

  Result<int32_t> Io(uint32_t op, void* arg);

  std::unique_ptr<ProcIo> owned_io_;
  ProcIo* io_ = nullptr;
  Pid pid_ = 0;
  int fd_ = -1;
};

// Reads and parses a binary trace-snapshot file (/proc2/kernel/trace or
// /proc2/<pid>/trace). An empty file — ring never armed — parses as an
// empty snapshot, not an error.
Result<PrTrace> ReadTraceFile(Kernel& k, Proc* caller, const std::string& path);
Result<PrTrace> ReadTraceFile(ProcIo& io, const std::string& path);

// Reads a whole text file over any ProcIo transport.
Result<std::string> ReadTextFile(ProcIo& io, const std::string& path);

// The procd span/stats registry (/proc2/kernel/procd) over any transport —
// local reads and RemoteProcIo reads return the same text.
Result<std::string> ProcdStats(ProcIo& io);

// Checks that every line of a metrics-style text (/proc2/kernel/metrics,
// /proc2/kernel/procd) has the `key value...` shape: a newline-terminated
// line whose first token is an identifier (optionally `name[tag]`) followed
// by at least one value token. On failure *bad_line gets the offender.
// Tools use this as a format canary so renderer drift fails loudly.
bool ValidateMetricsText(const std::string& text, std::string* bad_line = nullptr);

}  // namespace svr4

#endif  // SVR4PROC_TOOLS_PROCLIB_H_
