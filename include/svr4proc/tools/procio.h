// ProcIo: the transport seam between the controlling-process tools
// (proclib, truss, ps, dbx, kstat_tool) and a kernel's /proc namespace.
//
// The paper's claim is that a file-based process interface lets *any*
// holder of a descriptor operate on a process. This interface makes the
// descriptor's transport pluggable: LocalProcIo issues the syscall-shaped
// kernel calls directly, while procd's RemoteProcIo (procd/client.h) ships
// the same operations over a length-prefixed frame protocol to a daemon
// fronting a remote kernel. The tools are written against this interface
// once and run unmodified against either.
#ifndef SVR4PROC_TOOLS_PROCIO_H_
#define SVR4PROC_TOOLS_PROCIO_H_

#include <span>
#include <string>
#include <vector>

#include "svr4proc/kernel/kernel.h"

namespace svr4 {

class ProcIo {
 public:
  virtual ~ProcIo() = default;

  virtual Result<int> Open(const std::string& path, int oflags) = 0;
  virtual Result<void> Close(int fd) = 0;
  virtual Result<int64_t> Read(int fd, void* buf, uint64_t n) = 0;
  virtual Result<int64_t> Write(int fd, const void* buf, uint64_t n) = 0;
  virtual Result<int64_t> Lseek(int fd, int64_t off, int whence) = 0;
  virtual Result<int32_t> Ioctl(int fd, uint32_t op, void* arg) = 0;
  virtual Result<std::vector<DirEnt>> ReadDir(const std::string& path) = 0;
  virtual Result<size_t> ReadDirChunk(const std::string& path, uint64_t* cookie,
                                      size_t max, std::vector<DirEnt>* out) = 0;
  virtual Result<VAttr> Stat(const std::string& path) = 0;
  virtual Result<int> PollFds(std::span<PollFd> fds, int64_t timeout_ticks) = 0;
  // Spawns a simulated process (truss's "start up commands to be traced").
  virtual Result<Pid> Spawn(const std::string& path,
                            const std::vector<std::string>& argv,
                            const Creds& creds) = 0;

  // Escape hatches for tools that genuinely need the kernel object (e.g.
  // truss -c arming the metrics registry). Null on a remote transport;
  // callers must degrade gracefully.
  virtual Kernel* local_kernel() { return nullptr; }
  virtual Proc* local_proc() { return nullptr; }
};

// The in-process transport: forwards to the kernel's syscall surface on
// behalf of one native controller process.
class LocalProcIo : public ProcIo {
 public:
  LocalProcIo(Kernel& k, Proc* controller) : kernel_(&k), controller_(controller) {}

  Result<int> Open(const std::string& path, int oflags) override {
    return kernel_->Open(controller_, path, oflags);
  }
  Result<void> Close(int fd) override { return kernel_->Close(controller_, fd); }
  Result<int64_t> Read(int fd, void* buf, uint64_t n) override {
    return kernel_->Read(controller_, fd, buf, n);
  }
  Result<int64_t> Write(int fd, const void* buf, uint64_t n) override {
    return kernel_->Write(controller_, fd, buf, n);
  }
  Result<int64_t> Lseek(int fd, int64_t off, int whence) override {
    return kernel_->Lseek(controller_, fd, off, whence);
  }
  Result<int32_t> Ioctl(int fd, uint32_t op, void* arg) override {
    return kernel_->Ioctl(controller_, fd, op, arg);
  }
  Result<std::vector<DirEnt>> ReadDir(const std::string& path) override {
    return kernel_->ReadDir(controller_, path);
  }
  Result<size_t> ReadDirChunk(const std::string& path, uint64_t* cookie, size_t max,
                              std::vector<DirEnt>* out) override {
    return kernel_->ReadDirChunk(controller_, path, cookie, max, out);
  }
  Result<VAttr> Stat(const std::string& path) override {
    return kernel_->Stat(controller_, path);
  }
  Result<int> PollFds(std::span<PollFd> fds, int64_t timeout_ticks) override {
    return kernel_->PollFds(controller_, fds, timeout_ticks);
  }
  Result<Pid> Spawn(const std::string& path, const std::vector<std::string>& argv,
                    const Creds& creds) override {
    return kernel_->Spawn(path, argv, creds);
  }

  Kernel* local_kernel() override { return kernel_; }
  Proc* local_proc() override { return controller_; }

 private:
  Kernel* kernel_;
  Proc* controller_;
};

}  // namespace svr4

#endif  // SVR4PROC_TOOLS_PROCIO_H_
