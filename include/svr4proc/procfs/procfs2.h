// The proposed hierarchical process file system (the paper's "Proposed
// Restructuring"), mounted at /proc2 alongside the flat /proc.
//
// Each process is a directory of status and control files. "Process state
// is interrogated by read(2) operations applied to appropriate read-only
// status files and process control is effected by structured messages
// written to write-only control files." Batched messages — "several control
// operations in a single write" — are supported, which T-CTL benchmarks.
// Per-lwp subdirectories expose the threads of control sharing the address
// space, "a natural structure in which to present the relationship between
// a process and the individual threads-of-control".
//
// Layout:
//   /proc2/<pid>/status   read-only   PrStatus
//   /proc2/<pid>/psinfo   read-only   PrPsinfo
//   /proc2/<pid>/cred     read-only   PrCred
//   /proc2/<pid>/usage    read-only   PrUsage
//   /proc2/<pid>/sigact   read-only   SigAction[128]
//   /proc2/<pid>/map      read-only   PrMapEntry[]
//   /proc2/<pid>/as       read/write  the address space (offset = vaddr)
//   /proc2/<pid>/ctl      write-only  control message stream
//   /proc2/<pid>/ctlaudit read-only   PrCtlAudit (control audit ring)
//   /proc2/<pid>/lwp/<n>/lwpstatus    PrLwpStatus
//   /proc2/<pid>/lwp/<n>/lwpctl       per-lwp control message stream
//
// Control semantics are defined once, in the shared op table (procfs/ctl.h);
// this front-end only parses the message framing. Note PCRUN's 8-byte wire
// form (u32 flags + u32 vaddr) cannot carry the signal/fault sets, so
// PRSTRACE/PRSHOLD/PRSFAULT in a PCRUN message are rejected with EINVAL —
// send the sets as separate PCSTRACE/PCSHOLD/PCSFAULT messages.
#ifndef SVR4PROC_PROCFS_PROCFS2_H_
#define SVR4PROC_PROCFS_PROCFS2_H_

#include <string>

#include "svr4proc/fs/vnode.h"
#include "svr4proc/kernel/kernel.h"
#include "svr4proc/procfs/types.h"

namespace svr4 {

// Control message codes written to ctl/lwpctl files. Each message is a
// 4-byte code followed by its fixed-size operand.
enum PrCtl : int32_t {
  PCNULL = 0,    // no-op (padding)
  PCSTOP = 1,    // direct to stop and wait for it
  PCDSTOP = 2,   // direct to stop, do not wait
  PCWSTOP = 3,   // wait for the process to stop
  PCRUN = 4,     // u32 flags, u32 vaddr: make runnable (PrRunFlag subset)
  PCSTRACE = 5,  // SigSet: set traced signals
  PCSFAULT = 6,  // FltSet: set traced faults
  PCSENTRY = 7,  // SysSet: set traced syscall entries
  PCSEXIT = 8,   // SysSet: set traced syscall exits
  PCSHOLD = 9,   // SigSet: set held signals
  PCKILL = 10,   // i32: send a signal
  PCUNKILL = 11, // i32: delete a pending signal
  PCSSIG = 12,   // SigInfo: set the current signal
  PCCSIG = 13,   // clear the current signal
  PCCFAULT = 14, // clear the current fault
  PCSREG = 15,   // Regs: set registers
  PCSFPREG = 16, // FpRegs: set FP registers
  PCNICE = 17,   // i32: adjust priority
  PCSET = 18,    // u32: set mode flags (PR_FORK | PR_RLC)
  PCUNSET = 19,  // u32: clear mode flags
  PCWATCH = 20,  // PrWatch: set or clear a watchpoint
};

// Bytes of operand following each code; -1 for unknown codes. Derived from
// the shared op table in procfs/ctl.h, not a hand-maintained switch.
int PrCtlOperandSize(int32_t code);

// Root of the hierarchical fstype: directories named by pid.
class Pr2RootVnode : public Vnode {
 public:
  explicit Pr2RootVnode(Kernel* k) : kernel_(k) {}
  VType type() const override { return VType::kDir; }
  Result<VAttr> GetAttr() override;
  Result<VnodePtr> Lookup(const std::string& name) override;
  Result<std::vector<DirEnt>> Readdir() override;
  Result<size_t> ReaddirChunk(uint64_t* cookie, size_t max,
                              std::vector<DirEnt>* out) override;

 private:
  Kernel* kernel_;
};

// Mounts the hierarchical process file system at /proc2.
Result<void> MountProcFs2(Kernel& k, const std::string& path = "/proc2");

}  // namespace svr4

#endif  // SVR4PROC_PROCFS_PROCFS2_H_
