// The unified /proc control-plane core.
//
// Both front-ends of the process file system — the flat SVR4 PIOC* ioctl
// family and the hierarchical write(2) ctl-message stream — expose the same
// process model, and historically each encoded its operations in its own
// switch against the Kernel::Pr* primitives. This header replaces both with
// one declarative table: one row per operation, carrying the flat code, the
// hierarchical code, the canonical name, operand type and wire size, access
// class (read-only vs writable descriptor), zombie semantics, lwp scope,
// blocking behaviour, and privilege predicate — and exactly one handler.
// flat.cc and hier.cc are thin marshalling shims over this table, so an
// operation's behaviour, error codes, and permission rules cannot diverge
// between encodings.
//
// Adding a control operation means adding one row (and, for a new code, the
// enum value in types.h or procfs2.h); the table-completeness test asserts
// every code is covered exactly once.
#ifndef SVR4PROC_PROCFS_CTL_H_
#define SVR4PROC_PROCFS_CTL_H_

#include <span>

#include "svr4proc/procfs/procfs2.h"
#include "svr4proc/procfs/types.h"

namespace svr4 {

// The canonical in-memory operand type a handler receives. The ioctl
// front-end passes the caller's host pointer through; the ctl-message
// front-end decodes the fixed-size wire operand into this type first.
enum class CtlArgKind : uint8_t {
  kNone,     // no operand
  kInt,      // int32_t (signal number, nice delta)
  kFlags,    // uint32_t mode-flag word (PR_FORK | PR_RLC)
  kSigSet,   // SigSet
  kFltSet,   // FltSet
  kSysSet,   // SysSet
  kSigInfo,  // SigInfo
  kRegs,     // Regs
  kFpRegs,   // FpRegs
  kRun,      // PrRun (wire form: u32 flags + u32 vaddr)
  kWatch,    // PrWatch
  kOut,      // flat-only query: host pointer the handler fills in
};

// Which front-end carried the operation (transport detail; the audit ring
// deliberately does not record it, so both encodings produce identical
// audit streams for the same script).
enum class CtlSource : uint8_t { kIoctl, kCtlMsg };

struct CtlCtx {
  Kernel* k = nullptr;
  Proc* p = nullptr;            // target process
  Lwp* lwp = nullptr;           // non-null: lwp-scoped dispatch (lwpctl)
  Proc* caller = nullptr;       // controlling process, if known
  bool native_caller = false;   // host-driven controller (may block)
  bool fd_writable = false;     // descriptor carries the write right
  CtlSource source = CtlSource::kIoctl;
};

using CtlHandler = Result<int32_t> (*)(CtlCtx&, void* arg);
// Extra privilege predicate evaluated before the handler (e.g. PCNICE:
// raising priority needs the super-user).
using CtlPrivCheck = Result<void> (*)(const CtlCtx&, const void* arg);

// One row: the complete declarative description of a control operation.
struct CtlOp {
  const char* name;       // canonical name, recorded in the audit ring
  uint32_t pioc;          // flat PIOC* code; 0 = no flat encoding
  int32_t pc;             // hierarchical PC* code; -1 = no ctl encoding
  CtlArgKind arg;         // operand type the handler receives
  int16_t operand_size;   // ctl-message operand bytes; -1 when pc < 0
  bool read_only;         // permitted on a read-only descriptor (=> not audited)
  bool zombie_ok;         // still answers once the process is a zombie
  bool lwp_scope;         // honors an lwp-granular target (lwpctl)
  bool blocking;          // pumps the simulation; needs a native controller
  bool status_out;        // flat: optional PrStatus out-parameter on success
  int32_t alias_pc;       // >= 0: flat-only code that marshals to this PC row
  uint32_t alias_operand; //       ... with this fixed operand
  CtlPrivCheck priv;      // extra privilege predicate; nullptr = none
  CtlHandler handler;     // nullptr only on pure alias rows
};

// The table and its indexes.
std::span<const CtlOp> CtlOpTable();
const CtlOp* FindCtlOpByPioc(uint32_t pioc);
const CtlOp* FindCtlOpByPc(int32_t pc);

// Flat front-end entry point: looks up the PIOC* row, applies the flat
// marshalling quirks (null-operand PIOCSSIG clears, mode-code aliases,
// optional PrStatus out-parameter), and dispatches. ctx.fd_writable must
// reflect the descriptor; unknown codes keep the historical errno order
// (EBADF on a read-only fd, ENOENT on a zombie, else EINVAL).
Result<int32_t> CtlDispatchPioc(CtlCtx& ctx, uint32_t code, void* arg);

// Hierarchical front-end entry point: walks a ctl-message stream (4-byte
// code + fixed-size operand per message), decoding each operand to its
// canonical type and dispatching. Messages already executed keep their
// effect if a later one fails. lwp non-null scopes lwp-capable operations.
Result<int64_t> RunCtlStream(Kernel& k, Proc* p, Lwp* lwp, std::span<const uint8_t> buf,
                             bool native_caller, Proc* caller);

// The shared core: runs the access checks encoded in the row (write right,
// zombie state, native-caller requirement, privilege predicate), invokes
// the handler, and appends an audit record for control operations. Exposed
// for the differential tests; front-ends reach it via the entry points.
Result<int32_t> CtlDispatchOp(CtlCtx& ctx, const CtlOp& op, void* arg);

}  // namespace svr4

#endif  // SVR4PROC_PROCFS_CTL_H_
