// The process file system, flat SVR4 form: /proc/<pid> files accessed with
// open/close/lseek/read/write/ioctl. This is the paper's primary subject.
#ifndef SVR4PROC_PROCFS_PROCFS_H_
#define SVR4PROC_PROCFS_PROCFS_H_

#include <string>

#include "svr4proc/fs/vnode.h"
#include "svr4proc/kernel/kernel.h"
#include "svr4proc/procfs/types.h"

namespace svr4 {

// Directory vnode for /proc: "the name of each entry is a decimal number
// corresponding to the process id" (five digits, per Figure 1).
class ProcDirVnode : public Vnode {
 public:
  explicit ProcDirVnode(Kernel* k) : kernel_(k) {}

  VType type() const override { return VType::kDir; }
  Result<VAttr> GetAttr() override;
  Result<VnodePtr> Lookup(const std::string& name) override;
  Result<std::vector<DirEnt>> Readdir() override;
  Result<size_t> ReaddirChunk(uint64_t* cookie, size_t max,
                              std::vector<DirEnt>* out) override;

 private:
  Kernel* kernel_;
};

// One process file. Reads and writes transfer data between the caller and
// the process's address space at the virtual address given by the file
// offset; ioctl performs the PIOC* information and control operations.
class ProcVnode : public Vnode {
 public:
  ProcVnode(Kernel* k, Pid pid) : kernel_(k), pid_(pid) {}

  VType type() const override { return VType::kProc; }
  Result<VAttr> GetAttr() override;
  Result<void> Open(OpenFile& of, const Creds& cr, Proc* caller) override;
  void Close(OpenFile& of) override;
  Result<int64_t> Read(OpenFile& of, uint64_t off, std::span<uint8_t> buf) override;
  Result<int64_t> Write(OpenFile& of, uint64_t off, std::span<const uint8_t> buf) override;
  Result<int32_t> Ioctl(OpenFile& of, Proc* caller, uint32_t op, void* arg) override;
  int Poll(OpenFile& of) override;
  int32_t PrCountedTarget() const override { return pid_; }

  Pid pid() const { return pid_; }

 private:
  // Validates the descriptor and returns the live target process.
  Result<Proc*> Target(const OpenFile& of) const;

  Kernel* kernel_;
  Pid pid_;
};

// Checks the /proc open-permission rules ("permission to open requires that
// both the uid and gid of the traced process match those of the controlling
// process; setuid and setgid processes can be opened only by the
// super-user"). Shared with the hierarchical implementation.
Result<void> ProcOpenPermission(const Creds& cr, const Proc* target);

// Translates a prrun_t into kernel RunArgs. Shared with /proc2's PCRUN.
RunArgs ToRunArgs(const PrRun& r);

// Opens a read-only descriptor in `caller` for the object mapped at vaddr
// (or the executable when use_exe). Implements PIOCOPENM for both fstypes.
Result<int32_t> ProcOpenMappedObject(Kernel& k, Proc* caller, Proc* target, bool use_exe,
                                     uint32_t vaddr);

// Mounts the flat process file system at /proc.
Result<void> MountProcFs(Kernel& k, const std::string& path = "/proc");

}  // namespace svr4

#endif  // SVR4PROC_PROCFS_PROCFS_H_
