// /proc data structures and operation codes, mirroring SVR4 proc(4).
//
// These types are shared by the flat ioctl-based interface (/proc) and the
// proposed hierarchical read/write interface (/proc2): "process state is
// interrogated by read(2) operations applied to appropriate read-only status
// files" — the same structures simply travel over read() instead of ioctl().
#ifndef SVR4PROC_PROCFS_TYPES_H_
#define SVR4PROC_PROCFS_TYPES_H_

#include <cstdint>
#include <vector>

#include "svr4proc/base/fixed_set.h"
#include "svr4proc/isa/isa.h"
#include "svr4proc/kernel/process.h"
#include "svr4proc/kernel/signal.h"

namespace svr4 {

class Kernel;

inline constexpr int PRCLSZ = 8;
inline constexpr int PRFNSZ = 16;
inline constexpr int PRARGSZ = 80;
inline constexpr int PRMAPNMSZ = 32;
inline constexpr int PRNGROUPS = 16;
inline constexpr int PRNLWPIDS = 32;

// The execution context of a process: "designed to contain the information
// most frequently needed by a controlling process such as a debugger."
struct PrStatus {
  uint32_t pr_flags = 0;  // PrFlag bits
  uint16_t pr_why = 0;    // PrWhy, valid when stopped
  uint16_t pr_what = 0;   // signal, fault, or syscall number for pr_why
  SigInfo pr_info;        // details of the stop signal/fault
  uint16_t pr_cursig = 0;
  uint16_t pr_lwpid = 0;  // lwp whose stop is reported
  SigSet pr_sigpend;
  SigSet pr_sighold;
  Pid pr_pid = 0;
  Pid pr_ppid = 0;
  Pid pr_pgrp = 0;
  Pid pr_sid = 0;
  uint64_t pr_utime = 0;
  uint64_t pr_stime = 0;
  uint64_t pr_cutime = 0;
  uint64_t pr_cstime = 0;
  char pr_clname[PRCLSZ] = {};
  uint16_t pr_syscall = 0;  // in-progress system call, if any
  uint16_t pr_nsysarg = 0;
  uint32_t pr_sysarg[6] = {};
  uint32_t pr_instr = 0;  // instruction bytes at pr_reg.pc
  Regs pr_reg;
  uint32_t pr_nlwp = 0;
  uint32_t pr_cpuid = 0;  // CPU the representative lwp last ran on
};

// Everything ps(1) might want to display, in one operation: "each line of
// ps output is a true snapshot of the process."
struct PrPsinfo {
  char pr_state = 0;   // R (runnable), S (sleeping), T (stopped), Z (zombie)
  char pr_zomb = 0;
  char pr_nice = 0;
  char pr_pad = 0;
  uint32_t pr_flag = 0;
  Uid pr_uid = 0;
  Gid pr_gid = 0;
  Pid pr_pid = 0;
  Pid pr_ppid = 0;
  Pid pr_pgrp = 0;
  Pid pr_sid = 0;
  uint32_t pr_size = 0;    // virtual size in pages
  uint32_t pr_rssize = 0;  // resident pages
  uint64_t pr_start = 0;   // start tick
  uint64_t pr_time = 0;    // utime + stime
  char pr_clname[PRCLSZ] = {};
  char pr_fname[PRFNSZ] = {};
  char pr_psargs[PRARGSZ] = {};
  uint16_t pr_syscall = 0;
  uint16_t pr_nlwp = 0;
  uint16_t pr_cpuid = 0;  // CPU the representative lwp last ran on
  uint16_t pr_pad2 = 0;
};

// One address-space mapping (PIOCMAP): Figure 2 is a rendering of these.
struct PrMapEntry {
  uint32_t pr_vaddr = 0;
  uint32_t pr_size = 0;
  uint64_t pr_off = 0;
  uint32_t pr_mflags = 0;    // MaFlag bits
  uint32_t pr_pagesize = 0;
  char pr_mapname[PRMAPNMSZ] = {};
};

struct PrCred {
  Uid pr_euid = 0;
  Uid pr_ruid = 0;
  Uid pr_suid = 0;
  Gid pr_egid = 0;
  Gid pr_rgid = 0;
  Gid pr_sgid = 0;
  uint32_t pr_ngroups = 0;
  Gid pr_groups[PRNGROUPS] = {};
};

// The proposed resource usage interface.
struct PrUsage {
  uint64_t pr_tstamp = 0;  // current virtual time
  uint64_t pr_create = 0;  // process creation time
  uint64_t pr_rtime = 0;   // real time since creation
  uint64_t pr_utime = 0;   // user-level instruction count
  uint64_t pr_stime = 0;   // kernel time on the process's behalf
  uint64_t pr_minf = 0;    // minor faults (resolved without "I/O": zero-fill,
                           // COW copies)
  uint64_t pr_majf = 0;    // major faults (first touch of a file-backed page)
  uint64_t pr_nsig = 0;    // signals delivered
  uint64_t pr_sysc = 0;    // system calls
  uint64_t pr_ioch = 0;    // characters read and written
};

// prrun_t: how to resume a stopped process.
enum PrRunFlag : uint32_t {
  PRCSIG = 0x01,    // clear the current signal
  PRCFAULT = 0x02,  // clear the current fault
  PRSTRACE = 0x04,  // set the traced-signal set from pr_trace
  PRSHOLD = 0x08,   // set the held-signal set from pr_hold
  PRSFAULT = 0x10,  // set the traced-fault set from pr_fault
  PRSVADDR = 0x20,  // resume at pr_vaddr
  PRSTEP = 0x40,    // single-step one instruction
  PRSABORT = 0x80,  // abort the system call (entry stop / asleep stop)
  PRSTOP = 0x100,   // stop again before returning to user level
};

struct PrRun {
  uint32_t pr_flags = 0;
  SigSet pr_trace;
  SigSet pr_hold;
  FltSet pr_fault;
  uint32_t pr_vaddr = 0;
};

// prwatch_t: the proposed generalized data watchpoint facility. "The
// interface accepts specification of watched areas of any size, down to a
// single byte." pr_wflags == 0 removes the watchpoint at pr_vaddr.
struct PrWatch {
  uint32_t pr_vaddr = 0;
  uint32_t pr_size = 0;
  int32_t pr_wflags = 0;  // WaFlag bits
};

// The proposed page data interface: referenced/modified bits per page,
// sampled and cleared at will by a performance monitor. Host-side ioctl
// argument (controllers are native processes).
struct PrPageData {
  bool clear = true;
  std::vector<PageDataSeg> segs;
};

struct PrLwpIds {
  uint32_t n = 0;
  int32_t ids[PRNLWPIDS] = {};
};

// Execution-path statistics: the process's software-TLB counters plus the
// system-wide instruction count (a performance monitor samples these the
// same way it samples PIOCUSAGE).
struct PrVmStats {
  uint64_t pr_tlb_hits = 0;
  uint64_t pr_tlb_misses = 0;
  uint64_t pr_slow_lookups = 0;
  uint64_t pr_tlb_flushes = 0;
  uint64_t pr_instructions = 0;  // kernel-wide instructions retired
  // Predecoded-block engine counters for this process's address space
  // (all zero while the block engine has never touched it).
  uint64_t pr_bb_built = 0;
  uint64_t pr_bb_hits = 0;
  uint64_t pr_bb_misses = 0;
  uint64_t pr_bb_invalidations = 0;
  uint64_t pr_bb_fallbacks = 0;
};

// Snapshot of the per-process control audit ring (PIOCAUDIT and the
// read-only /proc2/<pid>/ctlaudit file). Records are oldest-first;
// pr_total - pr_n records have been overwritten by ring wrap.
struct PrCtlAudit {
  uint64_t pr_total = 0;  // control operations ever recorded
  uint32_t pr_n = 0;      // valid entries in pr_rec
  uint32_t pr_pad = 0;
  CtlAuditRec pr_rec[kCtlAuditCap] = {};
};

// Per-lwp status for the hierarchical interface's lwp subdirectories.
struct PrLwpStatus {
  uint16_t pr_lwpid = 0;
  uint32_t pr_flags = 0;
  uint16_t pr_why = 0;
  uint16_t pr_what = 0;
  uint16_t pr_cursig = 0;
  uint16_t pr_syscall = 0;
  Regs pr_reg;
  FpRegs pr_fpreg;
};

// Deprecated raw-structure operations: "their very existence reveals details
// of system implementation and their continuation into the new world of
// multi-threaded processes is doubtful."
struct PrRawProc {
  Pid p_pid = 0;
  Pid p_ppid = 0;
  Pid p_pgrp = 0;
  int32_t p_stat = 0;
  uint32_t p_flag = 0;
  Uid p_uid = 0;
  uint32_t p_nice = 0;
  uint32_t p_nlwp = 0;
  uint64_t p_sig_pending_low = 0;  // first 64 signals, packed
};

struct PrRawUser {
  uint32_t u_nofiles = 0;
  uint32_t u_cmask = 0;
  char u_comm[PRFNSZ] = {};
  char u_psargs[PRARGSZ] = {};
  uint64_t u_utime = 0;
  uint64_t u_stime = 0;
};

// ioctl operation codes for the flat interface.
inline constexpr uint32_t kPiocBase = 'q' << 8;
enum Pioc : uint32_t {
  PIOCSTATUS = kPiocBase | 1,   // prstatus_t*          get process status
  PIOCSTOP = kPiocBase | 2,     // (none)               direct to stop and wait
  PIOCWSTOP = kPiocBase | 3,    // (none)               wait for stop
  PIOCRUN = kPiocBase | 4,      // prrun_t*             make runnable
  PIOCGTRACE = kPiocBase | 5,   // sigset*              get traced signals
  PIOCSTRACE = kPiocBase | 6,   // sigset*              set traced signals
  PIOCSSIG = kPiocBase | 7,     // siginfo* (null: clear) set current signal
  PIOCKILL = kPiocBase | 8,     // int*                 send signal
  PIOCUNKILL = kPiocBase | 9,   // int*                 delete pending signal
  PIOCGHOLD = kPiocBase | 10,   // sigset*              get held signals
  PIOCSHOLD = kPiocBase | 11,   // sigset*              set held signals
  PIOCMAXSIG = kPiocBase | 12,  // int*                 highest signal number
  PIOCACTION = kPiocBase | 13,  // SigAction[kMaxSig]   signal actions
  PIOCGFAULT = kPiocBase | 14,  // fltset*              get traced faults
  PIOCSFAULT = kPiocBase | 15,  // fltset*              set traced faults
  PIOCCFAULT = kPiocBase | 16,  // (none)               clear current fault
  PIOCGENTRY = kPiocBase | 17,  // sysset*              get traced entries
  PIOCSENTRY = kPiocBase | 18,  // sysset*              set traced entries
  PIOCGEXIT = kPiocBase | 19,   // sysset*              get traced exits
  PIOCSEXIT = kPiocBase | 20,   // sysset*              set traced exits
  PIOCSFORK = kPiocBase | 21,   // (none)               set inherit-on-fork
  PIOCRFORK = kPiocBase | 22,   // (none)               reset inherit-on-fork
  PIOCSRLC = kPiocBase | 23,    // (none)               set run-on-last-close
  PIOCRRLC = kPiocBase | 24,    // (none)               reset run-on-last-close
  PIOCGREG = kPiocBase | 25,    // Regs*                get registers
  PIOCSREG = kPiocBase | 26,    // Regs*                set registers
  PIOCGFPREG = kPiocBase | 27,  // FpRegs*              get FP registers
  PIOCSFPREG = kPiocBase | 28,  // FpRegs*              set FP registers
  PIOCNMAP = kPiocBase | 29,    // int*                 number of mappings
  PIOCMAP = kPiocBase | 30,     // PrMapEntry[n+1]      mappings (zero-terminated)
  PIOCOPENM = kPiocBase | 31,   // uint32* (null: a.out) fd for mapped object
  PIOCCRED = kPiocBase | 32,    // PrCred*              credentials
  PIOCGROUPS = kPiocBase | 33,  // Gid[PRNGROUPS]       supplementary groups
  PIOCPSINFO = kPiocBase | 34,  // PrPsinfo*            ps(1) information
  PIOCNICE = kPiocBase | 35,    // int*                 adjust priority
  PIOCGETPR = kPiocBase | 36,   // PrRawProc*           deprecated: proc struct
  PIOCGETU = kPiocBase | 37,    // PrRawUser*           deprecated: user area
  PIOCUSAGE = kPiocBase | 38,   // PrUsage*             resource usage (proposed)
  PIOCNWATCH = kPiocBase | 39,  // int*                 number of watchpoints
  PIOCGWATCH = kPiocBase | 40,  // PrWatch[n]           get watchpoints
  PIOCSWATCH = kPiocBase | 41,  // PrWatch*             set/clear a watchpoint
  PIOCPAGEDATA = kPiocBase | 42,  // PrPageData*        ref/mod page data (proposed)
  PIOCLWPIDS = kPiocBase | 43,  // PrLwpIds*            lwp ids
  PIOCVMSTATS = kPiocBase | 44,  // PrVmStats*          TLB/exec-path counters
  PIOCAUDIT = kPiocBase | 45,   // PrCtlAudit*          control audit ring
  PIOCKSTAT = kPiocBase | 46,   // PrKstat*             kernel-wide metrics
  PIOCPSALL = kPiocBase | 47,   // PrPsAll*             ps info, whole population
  PIOCPROF = kPiocBase | 48,    // int*                 arm (>=0: period_log2) or
                                //                      disarm (<0) the pc sampler
};

// --- Kernel-wide metrics snapshot (PIOCKSTAT / /proc2/kernel/metrics) --------
//
// Fixed-size aggregate of the kernel trace/metrics registry. The array
// bounds are part of the ABI: kPrKstatEvents must cover every KtEvent code
// and kPrKstatSyscalls every syscall number (static_asserts in build.cc pin
// them against the kernel enums).
inline constexpr int kPrKstatEvents = 32;
inline constexpr int kPrKstatSyscalls = 200;

struct PrKstatSys {
  uint64_t pr_calls = 0;   // completed syscalls (exit records)
  uint64_t pr_errors = 0;  // completions with a nonzero errno
  uint64_t pr_latsum = 0;  // total entry->exit latency, ticks
  uint64_t pr_latmax = 0;  // worst single completion, ticks
};

struct PrKstat {
  uint64_t pr_ticks = 0;         // current virtual time
  uint64_t pr_instructions = 0;  // virtual-ISA instructions retired
  uint64_t pr_timer_events = 0;  // alarms fired + timed sleeps woken
  uint64_t pr_reaps = 0;         // zombies reaped into init
  uint32_t pr_ring_on = 0;       // trace ring armed?
  uint32_t pr_metrics_on = 0;    // metrics registry armed?
  uint64_t pr_trace_total = 0;   // trace records ever appended
  uint64_t pr_trace_dropped = 0;  // records lost to ring wrap
  uint64_t pr_events[kPrKstatEvents] = {};  // per-KtEvent emission counts
  PrKstatSys pr_sys[kPrKstatSyscalls] = {};
  // Scheduler wait accounting, aggregated over CPUs: count / total ticks /
  // worst single wait. stop_wait is the PCSTOP request->all-stopped span,
  // runq_wait the enqueue->first-dispatch span, steal the enqueue->stolen
  // span. Enough for a span-summary table (truss -c) without shipping the
  // full per-CPU histograms, which stay in /proc2/kernel/metrics.
  uint64_t pr_stop_wait_count = 0;
  uint64_t pr_stop_wait_sum = 0;
  uint64_t pr_stop_wait_max = 0;
  uint64_t pr_runq_wait_count = 0;
  uint64_t pr_runq_wait_sum = 0;
  uint64_t pr_runq_wait_max = 0;
  uint64_t pr_steal_count = 0;
  uint64_t pr_steal_sum = 0;
  uint64_t pr_steal_max = 0;
};

// --- Bulk population snapshot (PIOCPSALL / /proc2/kernel/psall) --------------
//
// One operation returning PrPsinfo for every process (zombies included),
// in ascending pid order. The per-pid alternative — readdir + open + ioctl +
// close per process — costs four name resolutions per entry; at 10^5+
// processes the bulk path is the only one that keeps ps-like tools O(n).
// The /proc2 file serves the same records as packed PrPsinfo bytes.
struct PrPsAll {
  // Window operands: at 10^6 processes one bulk snapshot is tens of MB, so
  // the caller pages through in pid order. Zero defaults keep the original
  // whole-table semantics. pr_next_pid comes back -1 on the last window,
  // else the pid to pass as the next pr_start_pid.
  Pid pr_start_pid = 0;      // in: first pid of the window (inclusive)
  uint32_t pr_limit = 0;     // in: max records to return; 0 = unlimited
  Pid pr_next_pid = -1;      // out: resume point, -1 when exhausted
  std::vector<PrPsinfo> pr_procs;
};

// --- Builders shared by both /proc implementations ---------------------------

PrStatus BuildPrStatus(Kernel& k, Proc* p);
PrPsinfo BuildPrPsinfo(Kernel& k, Proc* p);
PrCred BuildPrCred(const Proc* p);
PrUsage BuildPrUsage(const Kernel& k, const Proc* p);
std::vector<PrMapEntry> BuildPrMap(const Proc* p);
PrLwpStatus BuildPrLwpStatus(const Proc* p, const Lwp* l);
PrCtlAudit BuildPrCtlAudit(const Proc* p);
PrKstat BuildPrKstat(const Kernel& k);

}  // namespace svr4

#endif  // SVR4PROC_PROCFS_TYPES_H_
