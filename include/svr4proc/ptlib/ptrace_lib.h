// ptrace(2) implemented as a library function built on /proc — one of the
// paper's proposed extensions ("it is possible ... to eliminate ptrace from
// the operating system and implement it as a library function built on
// /proc"). The paper notes the difficult part is reporting stops via
// wait(2); this library solves it with its own Wait() built on poll(2) over
// /proc descriptors (another proposed extension).
//
// Because it rides on /proc rather than the parent/child plumbing, the
// library also offers what real ptrace never could: attaching to unrelated
// processes.
#ifndef SVR4PROC_PTLIB_PTRACE_LIB_H_
#define SVR4PROC_PTLIB_PTRACE_LIB_H_

#include <map>

#include "svr4proc/tools/proclib.h"

namespace svr4 {

class PtraceLib {
 public:
  PtraceLib(Kernel& k, Proc* caller) : kernel_(&k), caller_(caller) {}

  // Takes control of a process: traces every signal (a ptrace'd process
  // stops on receipt of any signal) and stops it with a SIGSTOP, as later
  // ATTACH semantics specify.
  Result<void> Attach(Pid pid);
  // Releases a process: clears tracing, clears any pending stop, resumes.
  Result<void> Detach(Pid pid);

  // The classic request interface (PtReq values). PEEK returns the word.
  Result<int64_t> Ptrace(int req, Pid pid, uint32_t addr, uint32_t data);

  // Waits until one of the attached processes stops on a signal or exits,
  // using poll(2) over the /proc descriptors.
  Result<WaitResult> Wait();

  bool attached(Pid pid) const { return tracees_.count(pid) != 0; }

 private:
  Result<ProcHandle*> Tracee(Pid pid);

  Kernel* kernel_;
  Proc* caller_;
  std::map<Pid, ProcHandle> tracees_;
};

}  // namespace svr4

#endif  // SVR4PROC_PTLIB_PTRACE_LIB_H_
