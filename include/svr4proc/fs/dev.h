// Character devices: the console (a capture buffer the tests and examples
// read back) and pipes. Blocking behaviour lives in the kernel's syscall
// layer: these vnodes return EAGAIN and the kernel sleeps the caller — the
// classic "while (condition) sleep(...)" structure the paper discusses when
// explaining stops inside interruptible sleeps.
#ifndef SVR4PROC_FS_DEV_H_
#define SVR4PROC_FS_DEV_H_

#include <deque>
#include <memory>
#include <string>

#include "svr4proc/fs/vnode.h"

namespace svr4 {

class ConsoleVnode : public Vnode {
 public:
  VType type() const override { return VType::kChr; }
  Result<VAttr> GetAttr() override;
  Result<int64_t> Read(OpenFile& of, uint64_t off, std::span<uint8_t> buf) override;
  Result<int64_t> Write(OpenFile& of, uint64_t off, std::span<const uint8_t> buf) override;
  int Poll(OpenFile& of) override;

  // Host-side access for tests/examples.
  const std::string& output() const { return output_; }
  void ClearOutput() { output_.clear(); }
  void PushInput(std::string_view s) { input_.insert(input_.end(), s.begin(), s.end()); }
  bool HasInput() const { return !input_.empty(); }

 private:
  std::string output_;
  std::deque<char> input_;
};

struct PipeBuf {
  static constexpr size_t kCapacity = 8192;
  std::deque<uint8_t> data;
  int readers = 0;
  int writers = 0;
};

class PipeVnode : public Vnode {
 public:
  PipeVnode(std::shared_ptr<PipeBuf> buf, bool write_end)
      : buf_(std::move(buf)), write_end_(write_end) {}

  VType type() const override { return VType::kFifo; }
  Result<VAttr> GetAttr() override;
  Result<void> Open(OpenFile& of, const Creds& cr, Proc* caller) override;
  void Close(OpenFile& of) override;
  // Empty pipe with live writers / full pipe with live readers: EAGAIN (the
  // kernel turns this into an interruptible sleep).
  Result<int64_t> Read(OpenFile& of, uint64_t off, std::span<uint8_t> buf) override;
  Result<int64_t> Write(OpenFile& of, uint64_t off, std::span<const uint8_t> buf) override;
  int Poll(OpenFile& of) override;

  const std::shared_ptr<PipeBuf>& buf() const { return buf_; }

 private:
  std::shared_ptr<PipeBuf> buf_;
  bool write_end_;
};

}  // namespace svr4

#endif  // SVR4PROC_FS_DEV_H_
