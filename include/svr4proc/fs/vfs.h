// Path resolution and the mount table.
//
// The mount table is keyed by covered vnode, as in SVR4: resolving a path
// component whose vnode is covered by a mounted fstype continues at that
// fstype's root ("the construction of the fantasy world ... is
// straightforward").
#ifndef SVR4PROC_FS_VFS_H_
#define SVR4PROC_FS_VFS_H_

#include <map>
#include <string>

#include "svr4proc/fs/vnode.h"

namespace svr4 {

class FaultInjector;  // kernel/faults.h; optional, null in normal operation

class Vfs {
 public:
  Vfs();  // creates an empty memfs root

  const VnodePtr& root() const { return root_; }

  // Resolves an absolute path to a vnode, crossing mount points.
  Result<VnodePtr> Resolve(const std::string& path);
  // Resolves all but the last component; returns the parent directory and
  // stores the final component in *leaf.
  Result<VnodePtr> ResolveParent(const std::string& path, std::string* leaf);

  // Mounts fs_root over the directory at `path` (which must resolve).
  Result<void> Mount(const std::string& path, VnodePtr fs_root);

  // Creates all directories along `path` (mkdir -p).
  Result<VnodePtr> MkdirAll(const std::string& path, const VAttr& attr);

  // Arms resolution-failure injection (kVfsResolve); null disarms.
  void SetFaultInjector(FaultInjector* finj) { finj_ = finj; }

 private:
  VnodePtr CrossMounts(VnodePtr vp) const;

  VnodePtr root_;
  std::map<Vnode*, VnodePtr> mounts_;
  FaultInjector* finj_ = nullptr;
};

}  // namespace svr4

#endif  // SVR4PROC_FS_VFS_H_
