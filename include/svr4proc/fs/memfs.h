// memfs: the in-memory "disk" file system holding executables, libraries,
// and ordinary files in the simulation. Plays the role of the conventional
// disk fstypes coexisting with /proc under VFS.
#ifndef SVR4PROC_FS_MEMFS_H_
#define SVR4PROC_FS_MEMFS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "svr4proc/fs/vnode.h"

namespace svr4 {

class MemFile : public Vnode {
 public:
  explicit MemFile(VAttr attr) : attr_(attr) { attr_.type = VType::kReg; }

  VType type() const override { return VType::kReg; }
  Result<VAttr> GetAttr() override;
  Result<void> Open(OpenFile& of, const Creds& cr, Proc* caller) override;
  Result<int64_t> Read(OpenFile& of, uint64_t off, std::span<uint8_t> buf) override;
  Result<int64_t> Write(OpenFile& of, uint64_t off, std::span<const uint8_t> buf) override;
  int Poll(OpenFile& of) override;
  Result<std::shared_ptr<VmObject>> GetVmObject() override;

  std::vector<uint8_t>& data() { return data_; }
  const std::vector<uint8_t>& data() const { return data_; }
  void Truncate() { data_.clear(); }

 private:
  VAttr attr_;
  std::vector<uint8_t> data_;
  // One object per file so concurrent mappings share pages. Weak: the
  // object holds a VnodePtr back to this file, and an owning pointer here
  // would form a reference cycle that leaks the file and its page cache.
  // Mappings keep the object alive; when the last one goes, it is rebuilt
  // on the next exec/mmap of the file.
  std::weak_ptr<FileVmObject> vmobj_;
};

class MemDir : public Vnode {
 public:
  explicit MemDir(VAttr attr) : attr_(attr) { attr_.type = VType::kDir; }

  VType type() const override { return VType::kDir; }
  Result<VAttr> GetAttr() override;
  Result<void> Open(OpenFile& of, const Creds& cr, Proc* caller) override;
  Result<VnodePtr> Lookup(const std::string& name) override;
  Result<VnodePtr> Create(const std::string& name, const VAttr& attr) override;
  Result<VnodePtr> Mkdir(const std::string& name, const VAttr& attr) override;
  Result<void> Remove(const std::string& name) override;
  Result<std::vector<DirEnt>> Readdir() override;

 private:
  VAttr attr_;
  std::map<std::string, VnodePtr> entries_;
};

}  // namespace svr4

#endif  // SVR4PROC_FS_MEMFS_H_
