// Process credentials, shared by the file system permission checks and the
// /proc security provisions (PIOCCRED, open permission, set-id handling).
#ifndef SVR4PROC_FS_CRED_H_
#define SVR4PROC_FS_CRED_H_

#include <cstdint>
#include <vector>

namespace svr4 {

using Uid = uint32_t;
using Gid = uint32_t;

struct Creds {
  Uid ruid = 0;
  Uid euid = 0;
  Uid suid = 0;  // saved set-user-id
  Gid rgid = 0;
  Gid egid = 0;
  Gid sgid = 0;
  std::vector<Gid> groups;

  bool IsSuper() const { return euid == 0; }

  bool InGroup(Gid g) const {
    if (egid == g) {
      return true;
    }
    for (Gid x : groups) {
      if (x == g) {
        return true;
      }
    }
    return false;
  }

  static Creds Root() { return Creds{}; }
  static Creds User(Uid uid, Gid gid) {
    Creds c;
    c.ruid = c.euid = c.suid = uid;
    c.rgid = c.egid = c.sgid = gid;
    return c;
  }
};

// Classic rwx permission check against a file's mode/owner.
bool CredsPermit(const Creds& cr, Uid file_uid, Gid file_gid, uint32_t mode, uint32_t want);

// Permission bits for CredsPermit's `want`.
inline constexpr uint32_t kPermRead = 4;
inline constexpr uint32_t kPermWrite = 2;
inline constexpr uint32_t kPermExec = 1;

}  // namespace svr4

#endif  // SVR4PROC_FS_CRED_H_
