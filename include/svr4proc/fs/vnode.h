// The Virtual File System interface.
//
// Mirrors the SVR4 VFS architecture the paper describes: a clean separation
// of generic (file system-independent) and specific (file system-dependent)
// code with vnodes as the interface between them. "In general any resource
// can be made to appear within the file system name space if it makes sense
// to view it that way" — /proc is exactly such a resource, implemented as
// one more fstype alongside the in-memory disk file system.
#ifndef SVR4PROC_FS_VNODE_H_
#define SVR4PROC_FS_VNODE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "svr4proc/base/result.h"
#include "svr4proc/fs/cred.h"
#include "svr4proc/vm/vm.h"

namespace svr4 {

struct Proc;  // kernel process; opaque at this layer

enum class VType { kReg, kDir, kChr, kFifo, kProc };

struct VAttr {
  VType type = VType::kReg;
  uint32_t mode = 0644;
  Uid uid = 0;
  Gid gid = 0;
  uint64_t size = 0;
  uint64_t mtime = 0;  // virtual clock ticks
  uint32_t nlink = 1;
};

struct DirEnt {
  std::string name;
  VType type = VType::kReg;
};

// open(2) flags (SVR4 subset).
enum OFlag : int {
  O_RDONLY = 0x0,
  O_WRONLY = 0x1,
  O_RDWR = 0x2,
  O_ACCMODE = 0x3,
  O_CREAT = 0x100,
  O_TRUNC = 0x200,
  O_EXCL = 0x400,
};

// poll(2) event bits.
enum PollBit : int {
  POLLIN = 0x01,
  POLLPRI = 0x02,
  POLLOUT = 0x04,
  POLLERR = 0x08,
  POLLHUP = 0x10,
  POLLNVAL = 0x20,
};

struct PollFd {
  int fd = -1;
  int events = 0;
  int revents = 0;
};

class Vnode;
using VnodePtr = std::shared_ptr<Vnode>;

// One open-file object; shared between descriptors duplicated by dup/fork,
// carrying the shared file offset.
struct OpenFile {
  VnodePtr vp;
  int oflags = 0;
  uint64_t offset = 0;
  bool writable = false;
  // Descriptor reference count (dup/fork share the OpenFile); the vnode's
  // Close hook runs when it reaches zero.
  int refs = 0;
  // /proc descriptor invalidation token: when a controlled process execs a
  // set-id program, outstanding descriptors go invalid (see paper,
  // "Integrity and Security"). 0 means not subject to invalidation.
  uint64_t pr_gen = 0;
  // Birth identity (Proc::ident) of the process this /proc descriptor named
  // at open time. After pid wraparound the same pid can name a different
  // process; a mismatch here means the descriptor's process is simply gone
  // (ENOENT), and its close must not touch the new process's ledger.
  uint64_t pr_ident = 0;
  // fstype-private state.
  std::shared_ptr<void> priv;
};
using OpenFilePtr = std::shared_ptr<OpenFile>;

// lseek whence values.
enum Whence : int { SEEK_SET_ = 0, SEEK_CUR_ = 1, SEEK_END_ = 2 };

class Vnode : public std::enable_shared_from_this<Vnode> {
 public:
  virtual ~Vnode() = default;

  virtual VType type() const = 0;
  virtual Result<VAttr> GetAttr() = 0;

  // Called when a descriptor is created; performs fstype-specific permission
  // checks (e.g. /proc's uid/gid and O_EXCL rules). `caller` may be null for
  // kernel-internal opens.
  virtual Result<void> Open(OpenFile& of, const Creds& cr, Proc* caller);
  // Called when the last descriptor to this OpenFile closes.
  virtual void Close(OpenFile& of);

  virtual Result<int64_t> Read(OpenFile& of, uint64_t off, std::span<uint8_t> buf);
  virtual Result<int64_t> Write(OpenFile& of, uint64_t off, std::span<const uint8_t> buf);
  virtual Result<int32_t> Ioctl(OpenFile& of, Proc* caller, uint32_t op, void* arg);
  virtual int Poll(OpenFile& of);

  // Directory operations.
  virtual Result<VnodePtr> Lookup(const std::string& name);
  virtual Result<VnodePtr> Create(const std::string& name, const VAttr& attr);
  virtual Result<VnodePtr> Mkdir(const std::string& name, const VAttr& attr);
  virtual Result<void> Remove(const std::string& name);
  virtual Result<std::vector<DirEnt>> Readdir();
  // Chunked directory enumeration with a resumable cursor, for directories
  // too large to materialize (a /proc root over 10^6 processes). `*cookie`
  // is an opaque continuation: 0 starts the enumeration and each call
  // advances it past the entries appended to `out` (at most `max`). Returns
  // the number appended; 0 means end-of-directory. Entries created or
  // removed between calls may or may not appear, but every entry that
  // exists for the whole enumeration appears exactly once. The default
  // implementation materializes Readdir() and slices; huge directories
  // override it with a true cursor.
  virtual Result<size_t> ReaddirChunk(uint64_t* cookie, size_t max,
                                      std::vector<DirEnt>* out);

  // Memory object for mmap/exec; ENODEV if the file cannot be mapped.
  virtual Result<std::shared_ptr<VmObject>> GetVmObject();

  // Pid whose /proc open ledger (TraceState counters) this vnode's
  // descriptors are counted in; -1 for everything that is not a counted
  // /proc file. Lets the kernel's invariant checker recount descriptor
  // references without knowing the fstypes.
  virtual int32_t PrCountedTarget() const { return -1; }

  // True for /proc2 ctl files, whose writes are batched control-message
  // streams. procd needs this to intercept blocking control codes (PCSTOP /
  // PCWSTOP) and park them instead of pumping the simulation inline while
  // other peers starve.
  virtual bool PrCtlStream() const { return false; }
};

// Maps a regular file's contents as a VM object. Pages are cached in the
// object so all mappings of one file share memory (private mappings then
// copy-on-write on top). Keeps the backing vnode reachable for PIOCOPENM.
class FileVmObject : public VmObject {
 public:
  explicit FileVmObject(VnodePtr file) : file_(std::move(file)) {}

  Result<PagePtr> GetPage(uint64_t page_index) override;
  std::string Name() const override;
  const VnodePtr& vnode() const { return file_; }

 private:
  VnodePtr file_;
  // Two address spaces mapping the same file share this object (the vnode
  // caches it); free-running CPUs can fault its pages concurrently.
  std::mutex mu_;
  std::map<uint64_t, PagePtr> cache_;
};

}  // namespace svr4

#endif  // SVR4PROC_FS_VNODE_H_
