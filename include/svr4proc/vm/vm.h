// Virtual memory: pages, memory objects, and per-process address spaces.
//
// This reproduces the SVR4/SunOS VM architecture as the paper relies on it:
//  * an address space is a set of mappings (contiguous VA ranges), each with
//    permissions and an underlying object (a file or anonymous zero-fill);
//  * private mappings have copy-on-write semantics: multiple private
//    mappings of one object share pages until someone writes;
//  * "text"/"data"/"stack"/"break" are not special-cased in the machinery,
//    but mappings carry advisory flags (MA_STACK/MA_BREAK) because "a
//    process-control application can sometimes make use of this information
//    so it is provided in the PIOCMAP interface" (paper, footnote 2);
//  * the stack mapping grows automatically and the break mapping grows on
//    explicit request (brk);
//  * a controlling process can read or write any valid address through
//    /proc; writes to private mappings (including read-only, executable
//    text) succeed with copy-on-write so breakpoints can be planted without
//    corrupting the a.out or other processes. Only bona-fide shared memory
//    (MAP_SHARED) writes through to the object;
//  * watchpoints (the paper's proposed extension) are implemented at this
//    layer: watched ranges have byte granularity; accesses to unwatched
//    bytes — even in the same page — proceed transparently;
//  * referenced/modified page information can be sampled and cleared (the
//    proposed page-data interface for performance monitors);
//  * a per-address-space software TLB caches page translations for the CPU
//    access path. Entries are invalidated wholesale by bumping a generation
//    counter whenever the mapping structure, protections, frames, or
//    watchpoints change; watch-active address spaces bypass the TLB so
//    watchpoints keep their byte granularity.
#ifndef SVR4PROC_VM_VM_H_
#define SVR4PROC_VM_VM_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "svr4proc/base/result.h"
#include "svr4proc/isa/cpu.h"

namespace svr4 {

class FaultInjector;  // kernel/faults.h; optional, null in normal operation
class KTrace;         // kernel/ktrace.h; optional, disarmed in normal operation
class BlockCache;     // isa/blocks.h; predecoded-block cache, lazily created
class SmpState;       // kernel/smp.h; optional, null on a pre-SMP kernel

inline constexpr uint32_t kPageSize = 4096;
inline constexpr uint32_t kPageShift = 12;

inline constexpr uint32_t PageAlignDown(uint32_t a) { return a & ~(kPageSize - 1); }
inline constexpr uint32_t PageAlignUp(uint32_t a) {
  return (a + kPageSize - 1) & ~(kPageSize - 1);
}

// Mapping attribute flags, exposed verbatim through PIOCMAP (prmap_t).
enum MaFlag : uint32_t {
  MA_EXEC = 0x01,
  MA_WRITE = 0x02,
  MA_READ = 0x04,
  MA_SHARED = 0x08,
  MA_BREAK = 0x10,
  MA_STACK = 0x20,
  MA_ANON = 0x40,
};

// Watchpoint flags (prwatch_t), per the proposed generalized data
// watchpoint facility.
enum WaFlag : int {
  WA_READ = 0x01,
  WA_WRITE = 0x02,
  WA_EXEC = 0x04,
};

struct Watch {
  uint32_t vaddr = 0;
  uint32_t size = 0;
  int wflags = 0;
};

struct VmPage {
  std::array<uint8_t, kPageSize> bytes{};
};
using PagePtr = std::shared_ptr<VmPage>;

// An object that mappings can be applied to. Files and anonymous memory both
// present this interface; GetPage returns the object's (shared) page.
class VmObject {
 public:
  virtual ~VmObject() = default;
  virtual Result<PagePtr> GetPage(uint64_t page_index) = 0;
  virtual bool IsAnon() const { return false; }
  virtual std::string Name() const { return std::string(); }
};

// Anonymous zero-fill object ("suitably-behaving anonymous objects ... in
// the construction of other segments", e.g. bss). Pages are cached so that
// shared anonymous mappings observe each other's stores.
class AnonObject : public VmObject {
 public:
  Result<PagePtr> GetPage(uint64_t page_index) override;
  bool IsAnon() const override { return true; }

 private:
  // Free-running SMP workers materialize pages concurrently; everything
  // else about a frame is private to the one address space touching it, but
  // the object's page cache is the shared rendezvous.
  std::mutex mu_;
  std::map<uint64_t, PagePtr> pages_;
};

// One /proc-visible mapping record.
struct MappingInfo {
  uint32_t vaddr = 0;
  uint32_t size = 0;        // bytes
  uint64_t offset = 0;      // byte offset within the object
  uint32_t flags = 0;       // MaFlag bits
  std::string name;         // "a.out", library name, or "" for anon
};

// Per-page referenced/modified sample (the proposed page data interface).
enum PgFlag : uint8_t {
  PG_REFERENCED = 0x01,
  PG_MODIFIED = 0x02,
};

struct PageDataSeg {
  uint32_t vaddr = 0;
  std::vector<uint8_t> pg;  // PgFlag bits per page
};

class AddressSpace;
using AddressSpacePtr = std::shared_ptr<AddressSpace>;

// Software-TLB and access-path counters (cheap: plain increments on paths
// that already exist). Exposed through PIOCVMSTATS for observability.
struct VmCounters {
  uint64_t tlb_hits = 0;      // accesses satisfied by the TLB fast path
  uint64_t tlb_misses = 0;    // fast-path-eligible accesses that fell through
  uint64_t slow_lookups = 0;  // mapping resolutions on the slow path
  uint64_t tlb_flushes = 0;   // generation bumps (whole-TLB invalidations)
  // Page-fault classes, counted where frames materialize (EnsureFrame):
  // a first touch of a file-backed page pays simulated I/O (major); zero-fill
  // and copy-on-write resolutions do not (minor).
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
};

// Number of direct-mapped TLB entries; must be a power of two.
inline constexpr uint32_t kTlbEntries = 64;

class AddressSpace : public MemoryIf {
 public:
  AddressSpace();
  ~AddressSpace() override;

  // Establishes a mapping of [start, start + len) onto obj at obj_offset
  // (all page aligned). Replaces any overlapping mappings (like mmap with
  // MAP_FIXED). grows_down marks an auto-growing stack segment.
  Result<void> Map(uint32_t start, uint32_t len, uint32_t ma_flags,
                   std::shared_ptr<VmObject> obj, uint64_t obj_offset, std::string name,
                   bool grows_down = false);
  Result<void> Unmap(uint32_t start, uint32_t len);
  Result<void> Protect(uint32_t start, uint32_t len, uint32_t prot_ma_flags);

  // Grows (or shrinks) the MA_BREAK mapping so it ends at new_end.
  Result<void> SetBreak(uint32_t new_end);
  Result<uint32_t> BreakEnd() const;

  // CPU accesses: protection checked, watchpoints honored, stack grown.
  std::optional<MemFault> MemRead(uint32_t addr, void* buf, uint32_t len,
                                  Access kind) override;
  std::optional<MemFault> MemWrite(uint32_t addr, const void* buf, uint32_t len) override;

  // Best-effort instruction-window fetch (never crosses a page); see
  // MemoryIf. Returns 0 when watchpoints are active so the caller falls back
  // to byte-exact fetches.
  uint32_t FetchWindow(uint32_t addr, void* buf, uint32_t len) override;

  // Runtime knob for the software TLB (benchmarks compare on vs. off).
  void SetTlbEnabled(bool on);
  bool TlbEnabled() const { return tlb_enabled_; }
  const VmCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = VmCounters{}; }

  // --- Predecoded-block engine support (isa/blocks.h) ----------------------
  // Code generation: advances on every TLB flush (mapping/protection/frame/
  // watchpoint change, COW break, clone) and on every store into an
  // executable mapping, through any path (CPU store, /proc write, copyout).
  // Predecoded blocks are valid only while their recorded generation
  // matches, so stale code can never execute.
  uint32_t CodeGen() const { return code_gen_; }
  // Whether block caching may be used at all right now: watchpoints force
  // byte-granular access checks and the TLB knob doubles as the master
  // switch for all translation/decode caching.
  bool CodeCacheActive() const { return tlb_enabled_ && !watch_active_; }
  // Mapping MA_* flags covering addr, or 0 if unmapped (block-builder gate:
  // only private executable pages are cacheable).
  uint32_t FlagsAt(uint32_t addr) const;
  // The per-AS block cache, created on first use. Never cloned: a forked
  // child re-decodes against its own generation.
  BlockCache& blocks();
  BlockCache* blocks_if() const { return bcache_.get(); }

  // Inline single-page TLB fast paths for the block executor. Return false
  // to route the access through the full MemRead/MemWrite path (miss,
  // permission failure, page crossing). Callers guarantee watchpoints are
  // inactive (the block engine never runs with watches armed).
  bool TlbLoad(uint32_t addr, void* out, uint32_t len) {
    if (((addr & (kPageSize - 1)) + len) > kPageSize) {
      return false;
    }
    uint32_t vpn = addr >> kPageShift;
    TlbEntry& e = tlb_[vpn & (kTlbEntries - 1)];
    if (e.gen != tlb_gen_ || e.vpn != vpn || (e.flags & MA_READ) == 0) {
      return false;
    }
    ++counters_.tlb_hits;
    CopySmallN(out, e.page->bytes.data() + (addr & (kPageSize - 1)), len);
    e.frame->pg |= PG_REFERENCED;
    return true;
  }
  bool TlbStore(uint32_t addr, const void* src, uint32_t len) {
    if (((addr & (kPageSize - 1)) + len) > kPageSize) {
      return false;
    }
    uint32_t vpn = addr >> kPageShift;
    TlbEntry& e = tlb_[vpn & (kTlbEntries - 1)];
    if (e.gen != tlb_gen_ || e.vpn != vpn || !e.write_ok) {
      return false;
    }
    ++counters_.tlb_hits;
    if (e.flags & MA_EXEC) {
      ++code_gen_;  // a store into executable memory invalidates blocks
      CodeShootdown();
    }
    CopySmallN(e.page->bytes.data() + (addr & (kPageSize - 1)), src, len);
    e.frame->pg |= PG_REFERENCED | PG_MODIFIED;
    return true;
  }

  // Forced whole-TLB invalidation (fault injection: a flush must only cost
  // misses, never serve stale translations).
  void FlushTlb() { TlbFlush(); }
  // Arms allocation-failure injection (kVmMap/kVmGrow); null disarms.
  void SetFaultInjector(FaultInjector* finj) { finj_ = finj; }
  // Wires the kernel trace ring (COW_BREAK / TLB_FLUSH events) with the
  // owning pid to stamp into records. Always wired; KTrace gates emission.
  void SetKtrace(KTrace* kt, int32_t pid) {
    kt_ = kt;
    kt_pid_ = pid;
  }

  // --- Simulated SMP (kernel/smp.h) ----------------------------------------
  // Wires the kernel's CPU set so translation/code invalidations charge
  // cross-CPU shootdown IPIs. Null (or a 1-CPU set) costs one predicted
  // branch per flush, the same discipline as the kt_/finj_ gates.
  void SetSmp(SmpState* smp) { smp_ = smp; }
  // One software-TLB bank per CPU: the same direct-mapped array, replicated,
  // with the access paths indexing through a bound-bank pointer. Entries are
  // validated by generation, so a flush still invalidates every bank with
  // one counter bump.
  void SetCpuCount(int n);
  // Binds the access paths to the given CPU's bank (clamped to bank 0 when
  // the space has fewer banks). Const: only mutable TLB state moves.
  void BindCpu(int cpu) const {
    size_t b = static_cast<size_t>(cpu);
    tlb_ = tlb_banks_[b < tlb_banks_.size() ? b : 0].data();
  }
  // Free-running mode's exclusion test: stores to writable MAP_SHARED
  // mappings are cross-address-space visible, so such a space must not run
  // user code on a parallel worker.
  bool HasWritableSharedMapping() const;

  // Controlling-process (/proc) access. Protections are ignored; private
  // mappings are copied-on-write; transfers are truncated at the first
  // unmapped address; a transfer starting at an unmapped address fails EIO.
  Result<int64_t> PrRead(uint32_t addr, std::span<uint8_t> buf);
  Result<int64_t> PrWrite(uint32_t addr, std::span<const uint8_t> buf);

  // as_fault: make [addr, addr+len) resident and (optionally) writable-in-
  // place for this address space, with COW. Used by /proc I/O internally.
  Result<void> AsFault(uint32_t addr, uint32_t len, bool for_write);

  // Copy-on-write duplicate for fork(2).
  AddressSpacePtr Clone() const;

  // Watchpoints.
  Result<void> AddWatch(const Watch& w);
  Result<void> ClearWatch(uint32_t vaddr);  // removes watchpoints starting at vaddr
  void ClearAllWatches();
  const std::vector<Watch>& Watches() const { return watches_; }
  // The watchpoint (if any) that an access [addr,addr+len) with the given
  // kind would trigger.
  const Watch* WatchHit(uint32_t addr, uint32_t len, Access kind) const;

  std::vector<MappingInfo> Maps() const;
  uint32_t VirtualSize() const;  // bytes in all mappings
  uint32_t ResidentPages() const;  // materialized frames
  bool Mapped(uint32_t addr) const;

  // Object backing the given address (for PIOCOPENM); null if unmapped or
  // anonymous.
  std::shared_ptr<VmObject> ObjectAt(uint32_t addr) const;

  // Samples referenced/modified bits for all mappings; clears them when
  // `clear` is set (performance monitors sample "on intervals at will").
  std::vector<PageDataSeg> SamplePageData(bool clear);

 private:
  // Fixed-size copies compile to single load/store pairs on the sizes the
  // CPU paths actually use; shared by the inline TLB fast paths above.
  static void CopySmallN(void* dst, const void* src, uint32_t n) {
    switch (n) {
      case 1:
        std::memcpy(dst, src, 1);
        break;
      case 2:
        std::memcpy(dst, src, 2);
        break;
      case 4:
        std::memcpy(dst, src, 4);
        break;
      case 8:
        std::memcpy(dst, src, 8);
        break;
      default:
        std::memcpy(dst, src, n);
        break;
    }
  }

  struct Frame {
    PagePtr page;
    bool owned = false;  // private copy already made (writes go in place)
    uint8_t pg = 0;      // PG_REFERENCED / PG_MODIFIED
  };

  struct Mapping {
    uint32_t start = 0;
    uint32_t npages = 0;
    uint32_t flags = 0;
    std::shared_ptr<VmObject> obj;
    uint64_t obj_pgoff = 0;
    std::string name;
    bool grows_down = false;
    std::vector<Frame> frames;

    uint32_t end() const { return start + npages * kPageSize; }
  };

  // One direct-mapped translation-cache slot. A slot is valid only while its
  // gen matches tlb_gen_, so invalidation is a single counter bump. The raw
  // page/frame pointers are safe because every operation that can move or
  // replace them (Map/Unmap/Protect/SetBreak/stack growth/COW/Clone) bumps
  // the generation first.
  struct TlbEntry {
    uint32_t vpn = 0;        // virtual page number this slot translates
    uint32_t gen = 0;        // valid iff gen == tlb_gen_
    uint32_t flags = 0;      // mapping MA_READ/MA_WRITE/MA_EXEC bits
    bool write_ok = false;   // page may be stored to in place (COW resolved)
    VmPage* page = nullptr;
    Frame* frame = nullptr;  // for referenced/modified accounting
  };

  // Invalidate every TLB entry (generation bump). Const because Clone()
  // must invalidate the source TLB; only mutable state is touched. Out of
  // line so the flush can be traced without this header seeing KTrace.
  void TlbFlush() const;
  // Charges shootdown IPIs for a code-generation-only invalidation (a store
  // into executable memory with no accompanying TLB flush). Out of line so
  // the inline store path does not need the SmpState definition.
  void CodeShootdown() const;
  bool TlbActive() const { return tlb_enabled_ && !watch_active_; }
  // Install/refresh the slot for the page just resolved by the slow path.
  void TlbFill(const Mapping& m, uint32_t page_index, Frame& f);

  Mapping* FindMapping(uint32_t addr);
  const Mapping* FindMapping(uint32_t addr) const;
  // Grows the stack if addr falls within the growth window of a grows_down
  // mapping; returns the now-covering mapping or nullptr.
  Mapping* GrowStackFor(uint32_t addr);
  // Materializes the frame for the given page of a mapping; applies COW when
  // for_write on a private mapping.
  Result<VmPage*> EnsureFrame(Mapping& m, uint32_t page_index, bool for_write);

  std::optional<MemFault> AccessCommon(uint32_t addr, void* rbuf, const void* wbuf,
                                       uint32_t len, Access kind);

  // Mappings keyed by start address.
  std::map<uint32_t, Mapping> maps_;
  std::vector<Watch> watches_;
  bool watch_active_ = false;

  // Software TLB state, one bank per CPU (always at least bank 0), with the
  // access paths indexing through the bound-bank pointer. Mutable because
  // Clone() (const) must invalidate the source's write-in-place entries when
  // frames become COW-shared. BindCpu rebinds the pointer; SetCpuCount may
  // reallocate the banks and rebinds to bank 0.
  mutable std::vector<std::array<TlbEntry, kTlbEntries>> tlb_banks_ =
      std::vector<std::array<TlbEntry, kTlbEntries>>(1);
  mutable TlbEntry* tlb_ = tlb_banks_[0].data();
  mutable uint32_t tlb_gen_ = 1;
  // Block-validity generation (see CodeGen()). Mutable for the same reason
  // as the TLB state: Clone() is const but must invalidate the source.
  mutable uint32_t code_gen_ = 1;
  // Predecoded-block cache, created on first use by the block engine; never
  // copied on Clone().
  std::unique_ptr<BlockCache> bcache_;
  bool tlb_enabled_ = true;
  mutable VmCounters counters_;
  FaultInjector* finj_ = nullptr;
  KTrace* kt_ = nullptr;
  int32_t kt_pid_ = 0;
  SmpState* smp_ = nullptr;
};

inline constexpr uint32_t kMaxStackGrowPages = 256;

}  // namespace svr4

#endif  // SVR4PROC_VM_VM_H_
