// FIG4: Figure 4 is the flowchart of process control inside issig(). This
// harness exercises the paper's corner cases and prints the stop sequences a
// controller observes — the behavioural rendering of the flowchart — then
// benchmarks the full issig round-trips.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

void Show(const char* label, const PrStatus& st) {
  std::printf("  %-34s -> %s", label, std::string(PrWhyName(st.pr_why)).c_str());
  if (st.pr_why == PR_SIGNALLED || st.pr_why == PR_JOBCONTROL) {
    std::printf("(%s)", std::string(SignalName(st.pr_what)).c_str());
  }
  std::printf("%s\n", (st.pr_flags & PR_ISTOP) ? " [event of interest]" : "");
}

void ScenarioTracedSignalDelivery() {
  std::printf("scenario A: traced signal, then delivery on resume\n");
  Sim sim;
  (void)sim.InstallProgram("/bin/spin", "spin: jmp spin\n");
  auto pid = sim.Start("/bin/spin");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  (void)h.Stop();
  SigSet sigs;
  sigs.Add(SIGTERM);
  (void)h.SetSigTrace(sigs);
  (void)h.Run();
  (void)h.Kill(SIGTERM);
  (void)h.WaitStop();
  Show("kill(SIGTERM), traced", *h.Status());
  (void)h.Run();  // without clearing: default action = terminate
  auto ec = sim.kernel().RunToExit(*pid);
  std::printf("  run without clearing            -> terminated by %s\n\n",
              std::string(SignalName(WTermSig(*ec))).c_str());
}

void ScenarioJobControlDoubleStop() {
  std::printf("scenario B: job-control double stop, /proc gets the last word\n");
  Sim sim;
  (void)sim.InstallProgram("/bin/spin", "spin: jmp spin\n");
  auto pid = sim.Start("/bin/spin");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  (void)h.Stop();
  SigSet sigs;
  sigs.Add(SIGTSTP);
  (void)h.SetSigTrace(sigs);
  (void)h.Run();
  (void)h.Kill(SIGTSTP);
  (void)h.WaitStop();
  Show("kill(SIGTSTP), traced", *h.Status());
  (void)h.Run();  // without clearing: issig takes the default action
  (void)h.WaitStop();
  Show("run without clearing", *h.Status());
  auto r = h.Run();
  std::printf("  PIOCRUN on a job-control stop     -> %s (only SIGCONT restarts it)\n",
              std::string(ErrnoName(r.error())).c_str());
  (void)h.Stop();  // the pending directive
  (void)h.Kill(SIGCONT);
  (void)h.WaitStop();
  Show("SIGCONT after a stop directive", *h.Status());
  (void)h.Run();
  std::printf("\n");
}

void ScenarioPtraceChain() {
  std::printf("scenario C: traced via /proc AND ptrace (both mechanisms)\n");
  Sim sim;
  (void)sim.InstallProgram("/bin/pair", R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      mov r8, r0
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_ptrace   ; PT_CONT(child, 1, 0)
      ldi r1, 7
      mov r2, r8
      ldi r3, 1
      ldi r4, 0
      sys
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r0, SYS_ptrace   ; PT_TRACEME
      ldi r1, 0
      sys
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, m
      ldi r3, 1
      sys
spin: jmp spin
      .data
m:    .asciz "A"
  )");
  auto pid = sim.Start("/bin/pair");
  (void)sim.kernel().RunUntil([&]() { return !sim.ConsoleOutput().empty(); });
  Pid child = -1;
  for (Pid p : sim.kernel().AllPids()) {
    Proc* q = sim.kernel().FindProc(p);
    if (q != nullptr && q->pt_traced) {
      child = p;
    }
  }
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), child);
  SigSet sigs;
  sigs.Add(SIGUSR1);
  (void)h.SetSigTrace(sigs);
  (void)h.Kill(SIGUSR1);
  (void)h.WaitStop();
  Show("signal traced via /proc", *h.Status());
  (void)h.Run();
  (void)sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(child);
    return p != nullptr && p->pt_owned_stop;
  });
  auto r = h.Run();
  std::printf("  after PIOCRUN: ptrace owns it     -> PIOCRUN says %s\n",
              std::string(ErrnoName(r.error())).c_str());
  (void)h.Stop();  // direct a stop for the last word
  (void)sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(child);
    Lwp* l = p != nullptr ? p->MainLwp() : nullptr;
    return l != nullptr && l->state == LwpState::kStopped && l->stop_why == PR_REQUESTED;
  });
  Show("parent PT_CONTs; directive pending", *h.Status());
  (void)h.Run();
  (void)h.Kill(SIGKILL);
  (void)sim.kernel().RunToExit(*pid);
  std::printf("\n");
}

void BM_SignalledStopRoundTrip(benchmark::State& state) {
  Sim sim;
  (void)sim.InstallProgram("/bin/spin", "spin: jmp spin\n");
  auto pid = sim.Start("/bin/spin");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  (void)h.Stop();
  (void)h.SetSigTrace(SigSet::Full());
  (void)h.Run();
  for (auto _ : state) {
    (void)h.Kill(SIGUSR1);
    (void)h.WaitStop();
    (void)h.RunClearSig();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignalledStopRoundTrip);

void BM_RequestedStopRoundTrip(benchmark::State& state) {
  Sim sim;
  (void)sim.InstallProgram("/bin/spin", "spin: jmp spin\n");
  auto pid = sim.Start("/bin/spin");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  for (auto _ : state) {
    (void)h.Stop();
    (void)h.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestedStopRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  std::printf("--- Figure 4 reproduction: process control in issig() ---\n");
  ScenarioTracedSignalDelivery();
  ScenarioJobControlDoubleStop();
  ScenarioPtraceChain();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
