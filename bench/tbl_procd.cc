// T-PROCD: the /proc2 network daemon under load. Measures control
// operations per second and whole-population psall snapshot reads per
// second with 1k and 10k simulated concurrent peers, each peer a native
// controller process holding real /proc descriptors. The daemon pump is
// O(peers) per service round, so these numbers are the honest cost of the
// single-threaded poll-driven design at scale.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_json.h"

#include "svr4proc/procd/client.h"
#include "svr4proc/procd/procd.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/ps.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

constexpr int kTargets = 16;  // traced processes shared by all peers

struct System {
  std::unique_ptr<Sim> sim;
  std::unique_ptr<ProcdServer> srv;
  std::vector<std::unique_ptr<RemoteProcIo>> peers;
  std::vector<int> fds;  // per peer: an open /proc descriptor on a target
};

// Connecting 10k peers is itself O(peers^2) in pump scans, so systems are
// built once per population size and shared by every benchmark repetition.
System& GetSystem(int npeers) {
  static std::map<int, std::unique_ptr<System>> cache;
  auto it = cache.find(npeers);
  if (it != cache.end()) {
    return *it->second;
  }
  auto sys = std::make_unique<System>();
  sys->sim = std::make_unique<Sim>();
  std::vector<Pid> targets;
  for (int i = 0; i < kTargets; ++i) {
    targets.push_back(
        sys->sim->kernel().CreateNativeProc(Creds::Root(), "worker")->pid);
  }
  sys->srv = std::make_unique<ProcdServer>(sys->sim->kernel());
  // Spans on: the per-op latency axis below is the attribution for the
  // 1k -> 10k collapse (every op pays an O(peers) pump scan).
  sys->srv->EnableSpans(true);
  for (int i = 0; i < npeers; ++i) {
    auto rio =
        std::make_unique<RemoteProcIo>(sys->srv->Connect(Creds::Root()));
    char path[32];
    std::snprintf(path, sizeof(path), "/proc/%05d",
                  targets[static_cast<size_t>(i) % targets.size()]);
    auto fd = rio->Open(path, O_RDONLY);
    sys->fds.push_back(fd.ok() ? *fd : -1);
    sys->peers.push_back(std::move(rio));
  }
  auto& ref = *sys;
  cache[npeers] = std::move(sys);
  return ref;
}

// Control operations: one PIOCSTATUS per iteration, round-robin across the
// whole peer population so every op pays the daemon's full service round.
void BM_ProcdCtlOps(benchmark::State& state) {
  System& sys = GetSystem(static_cast<int>(state.range(0)));
  PrStatus st;
  uint64_t ops = 0;
  size_t i = 0;
  for (auto _ : state) {
    size_t p = i++ % sys.peers.size();
    benchmark::DoNotOptimize(
        sys.peers[p]->Ioctl(sys.fds[p], PIOCSTATUS, &st).ok());
    ++ops;
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));  // ctl ops/sec
  state.counters["peers"] = static_cast<double>(state.range(0));
  // Per-op latency attribution from the server's span histograms: the p50
  // and p99 of dequeue->reply for the ioctl op, in host nanoseconds. Log2
  // buckets bound each quantile to within 2x — enough to show the
  // O(peers) collapse as a per-op latency, not just a throughput drop.
  const ProcdServer::OpSpan& span = sys.srv->op_span(PdOp::kIoctl);
  state.counters["ioctl_p50_ns"] = static_cast<double>(span.lat_ns.Quantile(0.50));
  state.counters["ioctl_p99_ns"] = static_cast<double>(span.lat_ns.Quantile(0.99));
}
BENCHMARK(BM_ProcdCtlOps)->Arg(1'000)->Arg(10'000)->Unit(benchmark::kMicrosecond);

// Whole-population snapshots: one windowed PIOCPSALL scan per iteration,
// issued by a rotating peer. items_per_second is snapshot reads/sec.
void BM_ProcdPsallSnapshot(benchmark::State& state) {
  System& sys = GetSystem(static_cast<int>(state.range(0)));
  uint64_t snaps = 0;
  uint64_t lines = 0;
  size_t i = 0;
  for (auto _ : state) {
    size_t p = i++ % sys.peers.size();
    auto snap = PsSnapshotAll(*sys.peers[p], 1);
    lines += snap.ok() ? snap->size() : 0;
    benchmark::DoNotOptimize(lines);
    ++snaps;
  }
  state.SetItemsProcessed(static_cast<int64_t>(snaps));  // snapshot reads/sec
  state.counters["peers"] = static_cast<double>(state.range(0));
  state.counters["rows_per_snapshot"] =
      snaps != 0 ? static_cast<double>(lines) / static_cast<double>(snaps) : 0;
  const ProcdServer::OpSpan& span = sys.srv->op_span(PdOp::kPsall);
  state.counters["psall_p50_ns"] = static_cast<double>(span.lat_ns.Quantile(0.50));
  state.counters["psall_p99_ns"] = static_cast<double>(span.lat_ns.Quantile(0.99));
}
BENCHMARK(BM_ProcdPsallSnapshot)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SVR4_BENCH_MAIN("tbl_procd")
