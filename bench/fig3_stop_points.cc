// FIG3: Figure 3 shows the points in the kernel at which a traced process
// may stop: system call entry, system call exit, machine faults, and signal
// receipt. This harness drives one process through every stop point, prints
// the observed sequence (the behavioural rendering of the figure), and
// benchmarks the stop/resume round-trip at each point.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

constexpr char kJourney[] = R"(
      ldi r0, SYS_getpid   ; (1) stop on syscall entry  (2) stop on exit
      sys
      bpt                  ; (3) stop on machine fault (FLTBPT)
after:
      ldi r0, SYS_pause    ; wait for the signal
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
)";

void PrintJourney() {
  Sim sim;
  auto img = sim.InstallProgram("/bin/journey", kJourney);
  auto pid = sim.Start("/bin/journey");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  (void)h.Stop();
  SysSet calls;
  calls.Add(SYS_getpid);
  (void)h.SetSysEntry(calls);
  (void)h.SetSysExit(calls);
  FltSet faults;
  faults.Add(FLTBPT);
  (void)h.SetFltTrace(faults);
  SigSet sigs;
  sigs.Add(SIGUSR1);
  (void)h.SetSigTrace(sigs);

  std::printf("--- Figure 3 reproduction: stop points on the kernel boundary ---\n");
  (void)h.Run();
  int n = 0;
  while (true) {
    if (!h.WaitStop().ok()) {
      break;
    }
    auto st = *h.Status();
    std::printf("  stop %d: %-13s what=%s\n", ++n,
                std::string(PrWhyName(st.pr_why)).c_str(),
                st.pr_why == PR_SYSENTRY || st.pr_why == PR_SYSEXIT
                    ? std::string(SyscallName(st.pr_what)).c_str()
                    : st.pr_why == PR_FAULTED
                          ? std::string(FaultName(st.pr_what)).c_str()
                          : std::string(SignalName(st.pr_what)).c_str());
    if (st.pr_why == PR_FAULTED) {
      // Hop over the breakpoint instruction and send the signal the pause
      // will receive.
      auto regs = st.pr_reg;
      regs.pc = *img->SymbolValue("after");
      (void)h.SetRegs(regs);
      PrRun r;
      r.pr_flags = PRCFAULT;
      (void)h.Run(r);
      (void)h.Kill(SIGUSR1);
      continue;
    }
    if (st.pr_why == PR_SIGNALLED) {
      (void)h.RunClearSig();
      PrRun r;
      r.pr_flags = PRSABORT;  // abort the pause; the process proceeds to exit
      // The process is sleeping in pause; direct a stop to reach it.
      (void)h.Stop();
      auto st2 = h.Status();
      if (st2.ok() && (st2->pr_flags & PR_ISTOP)) {
        (void)h.Run(r);
      }
      continue;
    }
    (void)h.Run();
  }
  std::printf("  process exited\n\n");
}

// Round-trip cost of one stop at each kind of stop point.
void BM_SyscallEntryStop(benchmark::State& state) {
  Sim sim;
  (void)sim.InstallProgram("/bin/looper", R"(
loop: ldi r0, SYS_getpid
      sys
      jmp loop
  )");
  auto pid = sim.Start("/bin/looper");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  (void)h.Stop();
  SysSet calls;
  calls.Add(SYS_getpid);
  (void)h.SetSysEntry(calls);
  (void)h.Run();
  for (auto _ : state) {
    (void)h.WaitStop();
    (void)h.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyscallEntryStop);

void BM_FaultStop(benchmark::State& state) {
  Sim sim;
  (void)sim.InstallProgram("/bin/bpt", R"(
loop: bpt
      jmp loop
  )");
  auto pid = sim.Start("/bin/bpt");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  (void)h.Stop();
  FltSet faults;
  faults.Add(FLTBPT);
  (void)h.SetFltTrace(faults);
  (void)h.Run();
  for (auto _ : state) {
    (void)h.WaitStop();
    auto st = *h.Status();
    auto regs = st.pr_reg;
    regs.pc += 1;  // skip the bpt
    (void)h.SetRegs(regs);
    PrRun r;
    r.pr_flags = PRCFAULT;
    (void)h.Run(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultStop);

void BM_SignalStop(benchmark::State& state) {
  Sim sim;
  (void)sim.InstallProgram("/bin/spin", "spin: jmp spin\n");
  auto pid = sim.Start("/bin/spin");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  (void)h.Stop();
  SigSet sigs;
  sigs.Add(SIGUSR1);
  (void)h.SetSigTrace(sigs);
  (void)h.Run();
  for (auto _ : state) {
    (void)h.Kill(SIGUSR1);
    (void)h.WaitStop();
    (void)h.RunClearSig();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignalStop);

}  // namespace

int main(int argc, char** argv) {
  PrintJourney();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
