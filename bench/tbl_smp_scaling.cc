// T-SMP: aggregate simulated-execution throughput as the CPU count grows.
// Deterministic mode interleaves per-CPU quanta on the calling thread — its
// value is replayable multi-queue scheduling, and its throughput must stay
// flat (no regression from the per-CPU machinery). Free-running mode farms
// user execution chunks out to real worker threads, one per simulated CPU,
// and is where the wall-clock scaling comes from: independent address
// spaces, no armed hooks, block engine on. EXPERIMENTS.md records the
// scaling table; CI asserts the 4-CPU free-running row beats uniprocessor
// by the documented floor.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_json.h"

#include "svr4proc/kernel/smp.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

// The same load/store-heavy loop tbl_exec_throughput measures: every
// iteration fetches 7 instructions and touches memory twice, so per-CPU
// TLB banks and the block cache both stay on the hot path.
constexpr char kComputeLoop[] = R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      ldw r6, [r4]
      add r7, r6
      jmp loop
      .data
var:  .word 0
)";

// One spinning process per simulated CPU at the widest topology: every
// run queue stays populated, so the measurement is pure execution scaling,
// not steal-path churn.
constexpr int kProcs = 8;

// range(0): simulated CPU count.
// range(1): 0 = deterministic (round-robin stepping), 1 = free-running
// (worker threads execute user chunks in parallel).
void BM_SmpScaling(benchmark::State& state) {
  const int ncpus = static_cast<int>(state.range(0));
  const bool free_run = state.range(1) != 0;
  Sim sim;
  Kernel& k = sim.kernel();
  k.SetNumCpus(ncpus);
  k.SetSmpMode(free_run ? SmpMode::kFreeRun : SmpMode::kDeterministic);
  (void)*sim.InstallProgram("/bin/loop", kComputeLoop);
  for (int i = 0; i < kProcs; ++i) {
    (void)*sim.Start("/bin/loop");
  }
  // Warm the block caches and spread the lwps before timing.
  for (int i = 0; i < 4 * kProcs; ++i) {
    k.Step();
  }
  const uint64_t before = k.counters().instructions;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      k.Step();
    }
  }
  const uint64_t executed = k.counters().instructions - before;
  state.SetItemsProcessed(static_cast<int64_t>(executed));
  state.SetLabel(std::string("ncpus=") + std::to_string(ncpus) +
                 (free_run ? " mode=free" : " mode=det"));

  uint64_t steals = 0, quanta = 0;
  for (int i = 0; i < k.smp().ncpus(); ++i) {
    steals += k.smp().cpu(i).stats.steals;
    quanta += k.smp().cpu(i).stats.quanta;
  }
  state.counters["steals"] = static_cast<double>(steals);
  state.counters["quanta"] = static_cast<double>(quanta);
  state.counters["ipis"] = static_cast<double>(k.smp().TotalIpisSent());
}
BENCHMARK(BM_SmpScaling)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->UseRealTime();

}  // namespace

SVR4_BENCH_MAIN("tbl_smp_scaling")
