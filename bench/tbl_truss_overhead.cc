// T-TRUSS: "truss will not alter the behavior of a process other than by
// slowing it down." Measures that slowdown: a syscall-heavy workload run to
// completion untraced vs. under truss, and the marginal cost of each traced
// stop.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.h"

#include "svr4proc/tools/sim.h"
#include "svr4proc/tools/truss.h"

using namespace svr4;

namespace {

// N getpid calls, then exit.
std::string Workload(int n) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "      ldi r8, %d\n", n);
  return std::string(buf) + R"(
loop: ldi r0, SYS_getpid
      sys
      ldi r5, 1
      sub r8, r5
      cmpi r8, 0
      jnz loop
      ldi r0, SYS_exit
      ldi r1, 0
      sys
)";
}

void BM_UntracedRun(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    (void)sim.InstallProgram("/bin/w", Workload(n));
    auto pid = sim.Start("/bin/w");
    auto ec = sim.kernel().RunToExit(*pid);
    benchmark::DoNotOptimize(ec.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("syscalls");
}
BENCHMARK(BM_UntracedRun)->Arg(100)->Arg(1000);

void BM_TrussedRun(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    (void)sim.InstallProgram("/bin/w", Workload(n));
    auto pid = sim.Start("/bin/w");
    Truss truss(sim.kernel(), sim.controller(),
                TrussOptions{.counts_only = true});
    (void)truss.Trace(*pid);
    benchmark::DoNotOptimize(truss.events());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("syscalls");
}
BENCHMARK(BM_TrussedRun)->Arg(100)->Arg(1000);

// Behaviour preservation check, printed once: the traced run produces the
// same output and exit status as the untraced one.
void VerifyBehaviourPreserved() {
  std::string prog = R"(
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 6
      sys
      ldi r0, SYS_exit
      ldi r1, 33
      sys
      .data
msg:  .asciz "same!\n"
)";
  int plain_status, trussed_status;
  std::string plain_out, trussed_out;
  {
    Sim sim;
    (void)sim.InstallProgram("/bin/p", prog);
    auto pid = sim.Start("/bin/p");
    plain_status = *sim.kernel().RunToExit(*pid);
    plain_out = sim.ConsoleOutput();
  }
  {
    Sim sim;
    (void)sim.InstallProgram("/bin/p", prog);
    auto pid = sim.Start("/bin/p");
    Truss truss(sim.kernel(), sim.controller());
    (void)truss.Trace(*pid);
    Proc* p = sim.kernel().FindProc(*pid);
    trussed_status = p != nullptr ? p->exit_status : -1;
    trussed_out = sim.ConsoleOutput();
  }
  std::printf("behaviour preserved under truss: output %s, status %s\n\n",
              plain_out == trussed_out ? "identical" : "DIFFERS",
              plain_status == trussed_status ? "identical" : "DIFFERS");
}

}  // namespace

int main(int argc, char** argv) {
  VerifyBehaviourPreserved();
  benchmark::Initialize(&argc, argv);
  svr4bench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return svr4bench::WriteBenchJson("tbl_truss_overhead", reporter.captured());
}
