// T-BPS: "the implementation of features such as conditional breakpoints,
// for which 'breakpoints per second' is a realistic measure of performance"
// (paper, footnote 3). Compares:
//   * /proc stop-on-fault breakpoints (the preferred method),
//   * /proc stop-on-signal breakpoints (fielding SIGTRAP instead of FLTBPT —
//     the unreliable pre-fault technique the paper argues against),
//   * the ptrace(2)-style API layered over /proc.
// The shape to expect: fault-based wins; signals add the promote/clear
// round-trips; the ptrace API adds wait()-style dispatch on top.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "svr4proc/ptlib/ptrace_lib.h"
#include "svr4proc/tools/debugger.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

constexpr char kLoop[] = R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp loop
      .data
var:  .word 0
)";

struct BpSystem {
  std::unique_ptr<Sim> sim;
  Pid pid = 0;
  uint32_t loop_addr = 0;
  uint8_t orig = 0;
};

BpSystem MakeSystem() {
  BpSystem s;
  s.sim = std::make_unique<Sim>();
  auto img = s.sim->InstallProgram("/bin/loop", kLoop);
  s.pid = *s.sim->Start("/bin/loop");
  s.loop_addr = *img->SymbolValue("loop");
  s.orig = img->text[s.loop_addr - img->text_vaddr];
  return s;
}

// Fault-based conditional breakpoint via the debugger: hit, evaluate a
// false condition, resume — the hot loop of conditional breakpoints.
void BM_ProcFaultBreakpoints(benchmark::State& state) {
  auto s = MakeSystem();
  Debugger dbg(s.sim->kernel(), s.sim->controller());
  (void)dbg.Attach(s.pid);
  // A condition that is never true: every hit is evaluate-and-resume.
  (void)dbg.SetConditionalBreakpoint(s.loop_addr,
                                     [](const PrStatus&) { return false; });
  // Continue() only returns on a satisfied stop; drive the evaluate/resume
  // cycle manually for a bounded number of hits per iteration.
  auto& h = dbg.handle();
  (void)h.Run();
  for (auto _ : state) {
    (void)h.WaitStop();
    auto st = h.Status();  // the debugger's condition evaluation
    benchmark::DoNotOptimize(st->pr_reg.r[5]);
    // Step over the breakpoint: lift, single-step, replant, resume.
    (void)h.WriteMem(s.loop_addr, &s.orig, 1);
    PrRun r;
    r.pr_flags = PRSTEP | PRCFAULT;
    (void)h.Run(r);
    (void)h.WaitStop();
    uint8_t bpt = kBreakpointByte;
    (void)h.WriteMem(s.loop_addr, &bpt, 1);
    PrRun r2;
    r2.pr_flags = PRCFAULT;
    (void)h.Run(r2);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("breakpoints");
}
BENCHMARK(BM_ProcFaultBreakpoints);

// Signal-based breakpoints: FLTBPT is not traced, so the fault converts to
// SIGTRAP, which is traced. Extra work: signal conversion, promotion, and
// the debugger must clear the signal on every resume (and on old systems,
// clear *all* signals — the ambiguity the paper describes).
void BM_ProcSignalBreakpoints(benchmark::State& state) {
  auto s = MakeSystem();
  auto h = *ProcHandle::Grab(s.sim->kernel(), s.sim->controller(), s.pid);
  (void)h.Stop();
  SigSet sigs;
  sigs.Add(SIGTRAP);
  (void)h.SetSigTrace(sigs);
  FltSet trace_flt;
  trace_flt.Add(FLTTRACE);  // single-step still uses the fault
  (void)h.SetFltTrace(trace_flt);
  uint8_t bpt = kBreakpointByte;
  (void)h.WriteMem(s.loop_addr, &bpt, 1);
  (void)h.Run();
  for (auto _ : state) {
    (void)h.WaitStop();  // SIGTRAP signalled stop
    auto st = h.Status();
    benchmark::DoNotOptimize(st->pr_reg.r[5]);
    // pc was left at the breakpoint; clear the signal, lift, step, replant.
    (void)h.WriteMem(s.loop_addr, &s.orig, 1);
    PrRun r;
    r.pr_flags = PRCSIG | PRSTEP | PRSVADDR;
    r.pr_vaddr = s.loop_addr;
    (void)h.Run(r);
    (void)h.WaitStop();  // FLTTRACE
    (void)h.WriteMem(s.loop_addr, &bpt, 1);
    PrRun r2;
    r2.pr_flags = PRCFAULT;
    (void)h.Run(r2);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("breakpoints");
}
BENCHMARK(BM_ProcSignalBreakpoints);

// The ptrace-style API: POKE/CONT/wait per hit, word-at-a-time patching.
void BM_PtraceApiBreakpoints(benchmark::State& state) {
  auto s = MakeSystem();
  PtraceLib pt(s.sim->kernel(), s.sim->controller());
  (void)pt.Attach(s.pid);
  uint32_t orig_word = static_cast<uint32_t>(*pt.Ptrace(PT_PEEKTEXT, s.pid, s.loop_addr, 0));
  uint32_t patched = (orig_word & ~0xFFu) | kBreakpointByte;
  (void)pt.Ptrace(PT_POKETEXT, s.pid, s.loop_addr, patched);
  (void)pt.Ptrace(PT_CONT, s.pid, 1, 0);
  for (auto _ : state) {
    (void)pt.Wait();  // SIGTRAP stop
    auto r5 = pt.Ptrace(PT_PEEKUSER, s.pid, 5, 0);  // "condition evaluation"
    benchmark::DoNotOptimize(*r5);
    (void)pt.Ptrace(PT_POKETEXT, s.pid, s.loop_addr, orig_word);
    (void)pt.Ptrace(PT_STEP, s.pid, 1, 0);
    (void)pt.Wait();
    (void)pt.Ptrace(PT_POKETEXT, s.pid, s.loop_addr, patched);
    (void)pt.Ptrace(PT_CONT, s.pid, 1, 0);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("breakpoints");
}
BENCHMARK(BM_PtraceApiBreakpoints);

}  // namespace

SVR4_BENCH_MAIN("tbl_breakpoints")
