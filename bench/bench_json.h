// Shared bench-binary main: prints the usual google-benchmark console table
// AND writes BENCH_<name>.json next to the binary — a machine-readable
// `[{"metric", "value", "unit", "seed"}, ...]` array CI archives per run so
// figures can be regenerated and regressions diffed without scraping the
// human table.
//
// Usage, replacing BENCHMARK_MAIN():
//   #include "bench_json.h"
//   SVR4_BENCH_MAIN("tbl_exec_throughput")
#ifndef SVR4PROC_BENCH_BENCH_JSON_H_
#define SVR4PROC_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace svr4bench {

struct JsonMetric {
  std::string metric;
  double value = 0.0;
  std::string unit;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

// Prints the human table exactly as ConsoleReporter would, capturing each
// run's headline time and user counters on the way through.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;  // skipped runs (self-check failures) carry no number
      }
      const std::string name = run.benchmark_name();
      captured_.push_back(JsonMetric{
          name, run.GetAdjustedRealTime(),
          benchmark::GetTimeUnitString(run.time_unit)});
      for (const auto& [cname, counter] : run.counters) {
        const char* unit = "count";
        if (cname == "items_per_second") {
          unit = "items/s";
        } else if (cname == "bytes_per_second") {
          unit = "bytes/s";
        }
        captured_.push_back(
            JsonMetric{name + ":" + cname, static_cast<double>(counter), unit});
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<JsonMetric>& captured() const { return captured_; }

 private:
  std::vector<JsonMetric> captured_;
};

// The simulation is deterministic (virtual time, no host randomness), so
// the recorded seed is a constant unless a bench opts into one.
inline int WriteBenchJson(const char* bench_name, const std::vector<JsonMetric>& ms,
                          uint64_t seed = 0) {
  std::string path = std::string("BENCH_") + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < ms.size(); ++i) {
    std::fprintf(f,
                 "  {\"metric\": \"%s\", \"value\": %.17g, \"unit\": \"%s\", "
                 "\"seed\": %llu}%s\n",
                 JsonEscape(ms[i].metric).c_str(), ms[i].value,
                 JsonEscape(ms[i].unit).c_str(),
                 static_cast<unsigned long long>(seed), i + 1 < ms.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu metrics)\n", path.c_str(), ms.size());
  return 0;
}

inline int RunBenchMain(const char* bench_name, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return WriteBenchJson(bench_name, reporter.captured());
}

}  // namespace svr4bench

#define SVR4_BENCH_MAIN(name)                             \
  int main(int argc, char** argv) {                       \
    return svr4bench::RunBenchMain(name, argc, argv);     \
  }

#endif  // SVR4PROC_BENCH_BENCH_JSON_H_
