// FIG2: regenerates Figure 2 of the paper (a typical memory map obtained
// through PIOCMAP, including shared-library mappings at high addresses) and
// benchmarks the PIOCMAP operation itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

struct MappedSystem {
  std::unique_ptr<Sim> sim;
  Pid pid = 0;
};

MappedSystem MakeSystem() {
  MappedSystem ms;
  ms.sim = std::make_unique<Sim>();
  Sim& sim = *ms.sim;
  auto lib = sim.InstallLibrary("libsim", R"(
libfn:  ldi r9, 1
        ret
        .data
libvar: .word 7
        .bss
libbss: .space 8192
  )");
  Assembler as = sim.NewAssembler();
  as.ImportLibrary(*lib, "libsim");
  auto img = as.Assemble(R"(
      .lib "libsim"
      call libfn
      ; grow the break a little so the break mapping is visible
      ldi r0, SYS_brk
      ldi r1, 0x80020000
      sys
spin: jmp spin
      .data
      .space 6000
      .bss
      .space 70000
  )");
  (void)sim.kernel().InstallAout("/bin/mapped", *img);
  auto pid = sim.Start("/bin/mapped");
  ms.pid = *pid;
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  return ms;
}

std::string Perms(uint32_t f) {
  std::string s;
  if (f & MA_READ) {
    s += "read";
  }
  if (f & MA_WRITE) {
    s += s.empty() ? "write" : "/write";
  }
  if (f & MA_EXEC) {
    s += s.empty() ? "exec" : "/exec";
  }
  return s;
}

void BM_Piocmap(benchmark::State& state) {
  auto ms = MakeSystem();
  auto h = *ProcHandle::Grab(ms.sim->kernel(), ms.sim->controller(), ms.pid);
  for (auto _ : state) {
    auto maps = h.GetMap();
    benchmark::DoNotOptimize(maps->size());
  }
}
BENCHMARK(BM_Piocmap);

void BM_Piocnmap(benchmark::State& state) {
  auto ms = MakeSystem();
  auto h = *ProcHandle::Grab(ms.sim->kernel(), ms.sim->controller(), ms.pid);
  for (auto _ : state) {
    int n = 0;
    (void)ms.sim->kernel().Ioctl(ms.sim->controller(), h.fd(), PIOCNMAP, &n);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_Piocnmap);

}  // namespace

int main(int argc, char** argv) {
  {
    auto ms = MakeSystem();
    auto h = *ProcHandle::Grab(ms.sim->kernel(), ms.sim->controller(), ms.pid);
    auto maps = *h.GetMap();
    std::printf("--- Figure 2 reproduction: a typical memory map (PIOCMAP) ---\n");
    std::printf("%-10s %6s  %-12s %s\n", "address", "size", "perms", "mapping");
    for (const auto& m : maps) {
      std::string tags;
      if (m.pr_mflags & MA_STACK) {
        tags = " [stack]";
      }
      if (m.pr_mflags & MA_BREAK) {
        tags = " [break]";
      }
      std::printf("%08X %5uK  %-12s %s%s\n", m.pr_vaddr, m.pr_size / 1024,
                  Perms(m.pr_mflags).c_str(), m.pr_mapname, tags.c_str());
    }
    std::printf("(all mappings private; code read/exec, data read/write;\n"
                " the shared library sits at the high addresses, as in the paper)\n\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
