// T-EXEC: raw simulated-execution throughput. Every instruction pays the
// MMU: an opcode/operand fetch plus any data access, all translated by the
// VM layer. The software TLB turns those per-access mapping lookups into a
// direct-mapped cache probe; this benchmark measures instructions/sec with
// the TLB on vs. off (runtime knob), and /proc bulk-read bandwidth the same
// way, so perf regressions on either path are visible in one place.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_json.h"

#include "svr4proc/isa/blocks.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

// Load/store-heavy loop: every iteration fetches 7 instructions and touches
// memory twice, exercising both the exec and data translation paths.
constexpr char kComputeLoop[] = R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      ldw r6, [r4]
      add r7, r6
      jmp loop
      .data
var:  .word 0
)";

struct ExecSystem {
  std::unique_ptr<Sim> sim;
  Pid pid = 0;
};

// A freshly exec'd test program has only a handful of mappings; a realistic
// SVR4 process carries dozens (text, data, bss, stack, shared-library
// segments). Pad the address space so the per-access mapping lookup pays its
// real-world cost in the TLB-off baseline.
constexpr int kExtraMappings = 32;

ExecSystem MakeSystem(bool tlb_on) {
  ExecSystem s;
  s.sim = std::make_unique<Sim>();
  (void)*s.sim->InstallProgram("/bin/loop", kComputeLoop);
  s.pid = *s.sim->Start("/bin/loop");
  Proc* p = s.sim->kernel().FindProc(s.pid);
  for (int i = 0; i < kExtraMappings; ++i) {
    (void)p->as->Map(0x40000000u + static_cast<uint32_t>(i) * 2 * kPageSize, kPageSize, MA_READ,
                     std::make_shared<AnonObject>(), 0, "lib");
  }
  p->as->SetTlbEnabled(tlb_on);
  return s;
}

// range(0): 1 = TLB on, 0 = TLB off.
// range(1): tracing — 0 = disarmed (compiled in, gates cold: the
// zero-cost-when-off claim), 1 = event ring armed, 2 = ring + metrics
// registry. The trace-overhead table in EXPERIMENTS.md compares the three.
// range(2): execution engine — 0 = interpreter pinned, 1 = predecoded-block
// engine pinned. Armed tracing forces the interpreter regardless (hooks
// observe every instruction), so the engine axis only moves trace=off rows.
void BM_ExecThroughput(benchmark::State& state) {
  const bool tlb_on = state.range(0) != 0;
  const int trace_mode = static_cast<int>(state.range(1));
  const bool blocks = state.range(2) != 0;
  auto s = MakeSystem(tlb_on);
  Kernel& k = s.sim->kernel();
  k.SetExecEngine(blocks ? ExecEngine::kBlocks : ExecEngine::kInterp);
  k.SetTracing(/*ring=*/trace_mode >= 1, /*metrics=*/trace_mode >= 2);
  const uint64_t before = k.counters().instructions;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      k.Step();
    }
  }
  const uint64_t executed = k.counters().instructions - before;
  state.SetItemsProcessed(static_cast<int64_t>(executed));
  std::string label = tlb_on ? "tlb=on" : "tlb=off";
  label += trace_mode == 0 ? " trace=off" : trace_mode == 1 ? " trace=ring"
                                                            : " trace=ring+hist";
  label += blocks ? " engine=blocks" : " engine=interp";
  state.SetLabel(label);

  Proc* p = k.FindProc(s.pid);
  const VmCounters& c = p->as->counters();
  state.counters["tlb_hits"] = static_cast<double>(c.tlb_hits);
  state.counters["tlb_misses"] = static_cast<double>(c.tlb_misses);
  state.counters["slow_lookups"] = static_cast<double>(c.slow_lookups);
  // Engine mode travels into the JSON both via the metric name (the third
  // Args dimension) and as an explicit counter.
  state.counters["engine_blocks"] = blocks ? 1 : 0;
  if (const BlockCache* bc = p->as->blocks_if()) {
    const BlockStats& bs = bc->stats();
    state.counters["bb_built"] = static_cast<double>(bs.built);
    state.counters["bb_hits"] = static_cast<double>(bs.hits);
    state.counters["bb_misses"] = static_cast<double>(bs.misses);
    state.counters["bb_fallbacks"] = static_cast<double>(bs.fallback_steps);
    if (blocks && trace_mode == 0 && tlb_on && bs.hits < bs.misses) {
      state.SkipWithError("block cache not serving the hot loop: hits "
                          "should dwarf misses in steady state");
    }
  } else if (blocks && trace_mode == 0 && tlb_on) {
    state.SkipWithError("block engine pinned but no block cache exists");
  }
  if (tlb_on) {
    // Counter non-regression: a steady-state tight loop must run out of the
    // TLB. If hits stop dwarfing misses + slow lookups, the cache broke.
    if (c.tlb_hits < 10 * (c.tlb_misses + c.slow_lookups)) {
      state.SkipWithError("TLB hit rate regressed: the hot loop is not "
                          "running out of the translation cache");
    }
  } else {
    if (c.tlb_hits != 0) {
      state.SkipWithError("TLB disabled but hits were counted");
    }
  }
}
BENCHMARK(BM_ExecThroughput)
    ->Args({1, 0, 0})
    ->Args({1, 0, 1})
    ->Args({0, 0, 0})
    ->Args({1, 1, 0})
    ->Args({1, 2, 0});

// range(0): 0 = profiler disarmed (the codegen-neutrality claim: the kProf
// template stamp is compiled in, the per-process gate cold), 1 = armed at
// 1 sample per 2^8 instructions. CI's obs-overhead job asserts the
// disarmed row tracks the BM_ExecThroughput/1/0/0 baseline.
void BM_ExecProfiler(benchmark::State& state) {
  const bool armed = state.range(0) != 0;
  auto s = MakeSystem(/*tlb_on=*/true);
  Kernel& k = s.sim->kernel();
  k.SetExecEngine(ExecEngine::kInterp);
  if (armed) {
    Proc* p = k.FindProc(s.pid);
    if (!k.SetProfiling(p, /*period_log2=*/8).ok()) {
      state.SkipWithError("PIOCPROF arming failed");
      return;
    }
  }
  const uint64_t before = k.counters().instructions;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      k.Step();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(k.counters().instructions - before));
  state.SetLabel(armed ? "prof=on" : "prof=off");
  if (armed) {
    Proc* p = k.FindProc(s.pid);
    state.counters["prof_samples"] =
        p != nullptr && p->prof != nullptr ? static_cast<double>(p->prof->samples) : 0;
  }
}
BENCHMARK(BM_ExecProfiler)->Arg(0)->Arg(1);

// /proc bulk read with the target's TLB knob (PrRead shares the single-
// resolve copy loop; the knob shows the slow path alone).
void BM_ProcBulkRead(benchmark::State& state) {
  const bool tlb_on = state.range(1) != 0;
  Sim sim;
  auto img = *sim.InstallProgram("/bin/holder", R"(
spin: jmp spin
      .bss
buf:  .space 262144
  )");
  Pid pid = *sim.Start("/bin/holder");
  sim.kernel().FindProc(pid)->as->SetTlbEnabled(tlb_on);
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), pid);
  uint32_t addr = *img.SymbolValue("buf");
  const size_t size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buf(size);
  for (auto _ : state) {
    auto n = h.ReadMem(addr, buf.data(), buf.size());
    benchmark::DoNotOptimize(*n);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
  state.SetLabel(tlb_on ? "tlb=on" : "tlb=off");
}
BENCHMARK(BM_ProcBulkRead)->Args({65536, 1})->Args({65536, 0})->Args({262144, 1});

}  // namespace

SVR4_BENCH_MAIN("tbl_exec_throughput")
