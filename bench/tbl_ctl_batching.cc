// T-CTL: the proposed restructuring claims "the use of a control file to
// which structured messages are written makes it possible to combine
// several control operations in a single write system call; this can
// improve the performance of some applications for which the number of
// system calls is a bottleneck." Measures control operations per second:
// one-ioctl-per-op (flat /proc) vs. batched messages on the /proc2 ctl file,
// as a function of batch size.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstring>

#include "svr4proc/procfs/procfs2.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

struct CtlSystem {
  std::unique_ptr<Sim> sim;
  Pid pid = 0;
};

CtlSystem MakeSystem() {
  CtlSystem s;
  s.sim = std::make_unique<Sim>();
  (void)s.sim->InstallProgram("/bin/spin", "spin: jmp spin\n");
  s.pid = *s.sim->Start("/bin/spin");
  return s;
}

// The representative control operation: updating a traced-event set, the
// sort of thing a debugger issues in volleys when reconfiguring a target.
void BM_FlatIoctlPerOp(benchmark::State& state) {
  auto s = MakeSystem();
  auto h = *ProcHandle::Grab(s.sim->kernel(), s.sim->controller(), s.pid);
  int ops_per_round = static_cast<int>(state.range(0));
  SigSet sigs;
  sigs.Add(SIGUSR1);
  for (auto _ : state) {
    for (int i = 0; i < ops_per_round; ++i) {
      // One ioctl(2) per control operation.
      (void)s.sim->kernel().Ioctl(s.sim->controller(), h.fd(), PIOCSTRACE, &sigs);
    }
  }
  state.SetItemsProcessed(state.iterations() * ops_per_round);
  state.counters["batch"] = 1;
}
BENCHMARK(BM_FlatIoctlPerOp)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_HierBatchedWrite(benchmark::State& state) {
  auto s = MakeSystem();
  char path[40];
  std::snprintf(path, sizeof(path), "/proc2/%05d/ctl", s.pid);
  int ctl = *s.sim->kernel().Open(s.sim->controller(), path, O_WRONLY);
  int ops_per_round = static_cast<int>(state.range(0));
  SigSet sigs;
  sigs.Add(SIGUSR1);
  // Pre-build one write(2) containing all the messages.
  std::vector<uint8_t> batch;
  for (int i = 0; i < ops_per_round; ++i) {
    int32_t code = PCSTRACE;
    batch.insert(batch.end(), reinterpret_cast<uint8_t*>(&code),
                 reinterpret_cast<uint8_t*>(&code) + 4);
    batch.insert(batch.end(), reinterpret_cast<uint8_t*>(&sigs),
                 reinterpret_cast<uint8_t*>(&sigs) + sizeof(sigs));
  }
  for (auto _ : state) {
    // One write(2), ops_per_round control operations.
    auto n = s.sim->kernel().Write(s.sim->controller(), ctl, batch.data(), batch.size());
    benchmark::DoNotOptimize(*n);
  }
  state.SetItemsProcessed(state.iterations() * ops_per_round);
  state.counters["batch"] = static_cast<double>(ops_per_round);
}
BENCHMARK(BM_HierBatchedWrite)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The unbatched hierarchical variant, to separate the read/write-vs-ioctl
// transport cost from the batching gain.
void BM_HierOneMessagePerWrite(benchmark::State& state) {
  auto s = MakeSystem();
  char path[40];
  std::snprintf(path, sizeof(path), "/proc2/%05d/ctl", s.pid);
  int ctl = *s.sim->kernel().Open(s.sim->controller(), path, O_WRONLY);
  int ops_per_round = static_cast<int>(state.range(0));
  SigSet sigs;
  sigs.Add(SIGUSR1);
  std::vector<uint8_t> one;
  int32_t code = PCSTRACE;
  one.insert(one.end(), reinterpret_cast<uint8_t*>(&code),
             reinterpret_cast<uint8_t*>(&code) + 4);
  one.insert(one.end(), reinterpret_cast<uint8_t*>(&sigs),
             reinterpret_cast<uint8_t*>(&sigs) + sizeof(sigs));
  for (auto _ : state) {
    for (int i = 0; i < ops_per_round; ++i) {
      (void)s.sim->kernel().Write(s.sim->controller(), ctl, one.data(), one.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * ops_per_round);
  state.counters["batch"] = 1;
}
BENCHMARK(BM_HierOneMessagePerWrite)->Arg(16)->Arg(64);

// --- Dispatch overhead of the unified control table --------------------------
// Both front-ends now route through the declarative op table in
// procfs/ctl.h. These two benchmarks isolate the per-operation dispatch
// cost — lookup, row checks, audit append — on the cheapest real operation
// each encoding has, so a table change that regresses dispatch shows up
// here rather than hiding inside the batching numbers above.

// Flat path: ioctl(2) entry -> PIOC lookup -> row checks -> handler.
// PIOCGTRACE is a read-only query (no audit append); PIOCSTRACE adds the
// audit-ring write. The difference bounds the audit cost.
void BM_DispatchFlatQuery(benchmark::State& state) {
  auto s = MakeSystem();
  auto h = *ProcHandle::Grab(s.sim->kernel(), s.sim->controller(), s.pid);
  SigSet out;
  for (auto _ : state) {
    (void)s.sim->kernel().Ioctl(s.sim->controller(), h.fd(), PIOCGTRACE, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchFlatQuery);

void BM_DispatchFlatControl(benchmark::State& state) {
  auto s = MakeSystem();
  auto h = *ProcHandle::Grab(s.sim->kernel(), s.sim->controller(), s.pid);
  SigSet sigs;
  sigs.Add(SIGUSR1);
  for (auto _ : state) {
    (void)s.sim->kernel().Ioctl(s.sim->controller(), h.fd(), PIOCSTRACE, &sigs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchFlatControl);

// Hierarchical path: write(2) entry -> message walk -> PC lookup -> operand
// decode -> row checks -> handler. PCNULL is the minimal message (4 bytes,
// no operand, no audit), so this is the framing + dispatch floor.
void BM_DispatchHierNull(benchmark::State& state) {
  auto s = MakeSystem();
  char path[40];
  std::snprintf(path, sizeof(path), "/proc2/%05d/ctl", s.pid);
  int ctl = *s.sim->kernel().Open(s.sim->controller(), path, O_WRONLY);
  int32_t code = PCNULL;
  for (auto _ : state) {
    (void)s.sim->kernel().Write(s.sim->controller(), ctl, &code, 4);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchHierNull);

void BM_DispatchHierControl(benchmark::State& state) {
  auto s = MakeSystem();
  char path[40];
  std::snprintf(path, sizeof(path), "/proc2/%05d/ctl", s.pid);
  int ctl = *s.sim->kernel().Open(s.sim->controller(), path, O_WRONLY);
  SigSet sigs;
  sigs.Add(SIGUSR1);
  std::vector<uint8_t> one;
  int32_t code = PCSTRACE;
  one.insert(one.end(), reinterpret_cast<uint8_t*>(&code),
             reinterpret_cast<uint8_t*>(&code) + 4);
  one.insert(one.end(), reinterpret_cast<uint8_t*>(&sigs),
             reinterpret_cast<uint8_t*>(&sigs) + sizeof(sigs));
  for (auto _ : state) {
    (void)s.sim->kernel().Write(s.sim->controller(), ctl, one.data(), one.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchHierControl);

}  // namespace

SVR4_BENCH_MAIN("tbl_ctl_batching")
