// Ablation studies for the design choices DESIGN.md calls out:
//
//  ABL-COW    — copy-on-write fork vs. an eager full copy of the address
//               space (the VM architecture choice the paper inherits from
//               SunOS; COW is what makes breakpoint planting safe AND fork
//               cheap).
//  ABL-WATCH  — the per-access watchpoint fast path: accesses in an address
//               space with no watchpoints must cost the same as in one that
//               never heard of watchpoints ("unwatched pages unaffected").
//  ABL-SNAP   — PIOCSTATUS as one consistent snapshot vs. reassembling the
//               same fields from multiple smaller operations (the design
//               rationale for fat status structures).
#include <benchmark/benchmark.h>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

// --- ABL-COW -----------------------------------------------------------------

// Program with a large bss it has already touched; fork cost then depends
// on the copying strategy.
struct ForkSystem {
  std::unique_ptr<Sim> sim;
  Pid pid = 0;
};

ForkSystem MakeForkSystem(int touched_pages) {
  ForkSystem s;
  s.sim = std::make_unique<Sim>();
  char head[64];
  std::snprintf(head, sizeof(head), "      .equ NPAGES, %d\n", touched_pages);
  (void)s.sim->InstallProgram("/bin/big", std::string(head) + R"(
      ; touch NPAGES pages of bss
      ldi r4, buf
      ldi r8, NPAGES
t:    ldi r5, 1
      stw r5, [r4]
      addi r4, 4096
      ldi r6, 1
      sub r8, r6
      cmpi r8, 0
      jnz t
spin: jmp spin
      .bss
buf:  .space 4194304
  )");
  s.pid = *s.sim->Start("/bin/big");
  // Let it touch its pages.
  (void)s.sim->kernel().RunUntil([&]() {
    Proc* p = s.sim->kernel().FindProc(s.pid);
    return p != nullptr && p->as->ResidentPages() >= static_cast<uint32_t>(touched_pages);
  });
  return s;
}

void BM_CowClone(benchmark::State& state) {
  auto s = MakeForkSystem(static_cast<int>(state.range(0)));
  Proc* p = s.sim->kernel().FindProc(s.pid);
  for (auto _ : state) {
    auto child = p->as->Clone();  // what fork(2) does: share frames, COW
    benchmark::DoNotOptimize(child->VirtualSize());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pages"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CowClone)->Arg(64)->Arg(512)->Arg(1024);

void BM_EagerCopyClone(benchmark::State& state) {
  auto s = MakeForkSystem(static_cast<int>(state.range(0)));
  Proc* p = s.sim->kernel().FindProc(s.pid);
  for (auto _ : state) {
    // The ablation: copy every resident page at fork time.
    auto child = p->as->Clone();
    for (const auto& m : p->as->Maps()) {
      std::vector<uint8_t> buf(kPageSize);
      for (uint32_t off = 0; off < m.size; off += kPageSize) {
        auto n = p->as->PrRead(m.vaddr + off, buf);
        if (n.ok() && *n > 0) {
          (void)child->PrWrite(m.vaddr + off,
                               std::span<const uint8_t>(buf.data(),
                                                        static_cast<size_t>(*n)));
        }
      }
    }
    benchmark::DoNotOptimize(child->ResidentPages());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pages"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EagerCopyClone)->Arg(64)->Arg(512);

// --- ABL-WATCH ----------------------------------------------------------------

void RunAccessLoop(benchmark::State& state, bool with_far_watchpoint) {
  Sim sim;
  (void)sim.InstallProgram("/bin/t", R"(
spin: jmp spin
      .bss
buf:  .space 65536
  )");
  auto pid = *sim.Start("/bin/t");
  Proc* p = sim.kernel().FindProc(pid);
  if (with_far_watchpoint) {
    // A watchpoint exists but never overlaps the accessed range.
    (void)p->as->AddWatch(Watch{0x80008000 + 60000, 4, WA_WRITE});
  }
  uint32_t v = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      (void)p->as->MemWrite(0x80008000 + static_cast<uint32_t>(i) * 64, &v, 4);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_AccessNoWatchpoints(benchmark::State& state) {
  RunAccessLoop(state, false);
}
BENCHMARK(BM_AccessNoWatchpoints);

void BM_AccessWithIdleWatchpoint(benchmark::State& state) {
  RunAccessLoop(state, true);
}
BENCHMARK(BM_AccessWithIdleWatchpoint);

// --- ABL-SNAP -----------------------------------------------------------------

void BM_StatusOneSnapshot(benchmark::State& state) {
  Sim sim;
  (void)sim.InstallProgram("/bin/t", "spin: jmp spin\n");
  auto pid = *sim.Start("/bin/t");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), pid);
  for (auto _ : state) {
    auto st = h.Status();
    benchmark::DoNotOptimize(st->pr_reg.pc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatusOneSnapshot);

void BM_StatusReassembled(benchmark::State& state) {
  Sim sim;
  (void)sim.InstallProgram("/bin/t", "spin: jmp spin\n");
  auto pid = *sim.Start("/bin/t");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), pid);
  for (auto _ : state) {
    // The same information via separate operations: registers, signal
    // masks, credentials, psinfo — four calls, no consistency.
    auto regs = h.GetRegs();
    auto hold = h.GetHold();
    auto cred = h.Cred();
    auto ps = h.Psinfo();
    benchmark::DoNotOptimize(regs->pc);
    benchmark::DoNotOptimize(hold->Count());
    benchmark::DoNotOptimize(cred->pr_ruid);
    benchmark::DoNotOptimize(ps->pr_pid);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatusReassembled);

}  // namespace

BENCHMARK_MAIN();
