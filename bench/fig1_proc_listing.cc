// FIG1: regenerates Figure 1 of the paper ("ls -l /proc") and benchmarks the
// directory scan that produces it: preaddir over the process table plus one
// attribute fetch per entry.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "svr4proc/tools/ps.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

std::unique_ptr<Sim> MakeSystem(int nprocs) {
  auto sim = std::make_unique<Sim>();
  (void)sim->InstallProgram("/bin/worker", R"(
loop: ldi r0, SYS_getpid
      sys
      jmp loop
  )");
  for (int i = 0; i < nprocs; ++i) {
    Creds creds = (i % 2) ? Creds::User(100 + static_cast<Uid>(i), 10)
                          : Creds::Root();
    (void)sim->kernel().Spawn("/bin/worker", {"worker"}, creds);
  }
  for (int i = 0; i < 200; ++i) {
    sim->kernel().Step();
  }
  return sim;
}

void BM_LsProc(benchmark::State& state) {
  auto sim = MakeSystem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = LsProc(sim->kernel(), sim->controller());
    benchmark::DoNotOptimize(out->size());
  }
  state.counters["procs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_LsProc)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ReaddirOnly(benchmark::State& state) {
  auto sim = MakeSystem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto ents = sim->kernel().ReadDir(sim->controller(), "/proc");
    benchmark::DoNotOptimize(ents->size());
  }
}
BENCHMARK(BM_ReaddirOnly)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  {
    auto sim = MakeSystem(3);
    std::printf("--- Figure 1 reproduction: a sample /proc directory ---\n");
    std::printf("$ ls -l /proc\n%s\n",
                LsProc(sim->kernel(), sim->controller())->c_str());
    std::printf("(name = zero-padded pid; owner/group = real uid/gid;\n"
                " size = total virtual memory; system processes show 0)\n\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
