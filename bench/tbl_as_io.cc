// T-BW: /proc "was a functional improvement over ptrace only to the extent
// that it provided greater bandwidth and the ability to control unrelated
// processes". Measures address-space I/O bandwidth: bulk read/write through
// the /proc file versus ptrace's one-word-per-call PEEK/POKE.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "svr4proc/ptlib/ptrace_lib.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

struct IoSystem {
  std::unique_ptr<Sim> sim;
  Pid pid = 0;
  uint32_t buf_addr = 0;
};

IoSystem MakeSystem() {
  IoSystem s;
  s.sim = std::make_unique<Sim>();
  auto img = s.sim->InstallProgram("/bin/holder", R"(
spin: jmp spin
      .bss
buf:  .space 262144
  )");
  s.pid = *s.sim->Start("/bin/holder");
  s.buf_addr = *img->SymbolValue("buf");
  return s;
}

void BM_ProcRead(benchmark::State& state) {
  auto s = MakeSystem();
  auto h = *ProcHandle::Grab(s.sim->kernel(), s.sim->controller(), s.pid);
  size_t size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buf(size);
  for (auto _ : state) {
    auto n = h.ReadMem(s.buf_addr, buf.data(), buf.size());
    benchmark::DoNotOptimize(*n);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_ProcRead)->Arg(4)->Arg(256)->Arg(4096)->Arg(65536)->Arg(262144);

void BM_ProcWrite(benchmark::State& state) {
  auto s = MakeSystem();
  auto h = *ProcHandle::Grab(s.sim->kernel(), s.sim->controller(), s.pid);
  size_t size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buf(size, 0xAB);
  for (auto _ : state) {
    auto n = h.WriteMem(s.buf_addr, buf.data(), buf.size());
    benchmark::DoNotOptimize(*n);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_ProcWrite)->Arg(4096)->Arg(65536);

void BM_PtracePeekLoop(benchmark::State& state) {
  auto s = MakeSystem();
  PtraceLib pt(s.sim->kernel(), s.sim->controller());
  (void)pt.Attach(s.pid);
  size_t size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buf(size);
  for (auto _ : state) {
    // One word per call — the ptrace way.
    for (size_t off = 0; off < size; off += 4) {
      auto w = pt.Ptrace(PT_PEEKDATA, s.pid, s.buf_addr + static_cast<uint32_t>(off), 0);
      uint32_t word = static_cast<uint32_t>(*w);
      std::memcpy(buf.data() + off, &word, 4);
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_PtracePeekLoop)->Arg(4)->Arg(256)->Arg(4096)->Arg(65536);

void BM_PtracePokeLoop(benchmark::State& state) {
  auto s = MakeSystem();
  PtraceLib pt(s.sim->kernel(), s.sim->controller());
  (void)pt.Attach(s.pid);
  size_t size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    for (size_t off = 0; off < size; off += 4) {
      (void)pt.Ptrace(PT_POKEDATA, s.pid, s.buf_addr + static_cast<uint32_t>(off),
                      0xDEADBEEF);
    }
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_PtracePokeLoop)->Arg(4096)->Arg(65536);

}  // namespace

SVR4_BENCH_MAIN("tbl_as_io")
