// T-WATCH: the proposed watchpoint facility. "The traced process stops only
// when a watchpoint really fires" — unwatched traffic runs at full speed.
// Compares detecting a store to a watched word via:
//   * the watchpoint facility (run free until FLTWATCH),
//   * single-step emulation (stop after every instruction and check the
//     word — the only portable technique before watchpoints).
// Expected shape: the watchpoint wins by orders of magnitude when the
// watched store is rare.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

// Performs `gap` iterations of busy work between each store to `hot`.
std::string Workload(int gap) {
  char head[64];
  std::snprintf(head, sizeof(head), "      .equ GAP, %d\n", gap);
  return std::string(head) + R"(
outer:
      ldi r8, GAP
busy: ldi r4, cold
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]       ; unwatched store (same page as hot)
      ldi r6, 1
      sub r8, r6
      cmpi r8, 0
      jnz busy
      ldi r4, hot
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]       ; the watched store
      jmp outer
      .data
cold: .word 0
hot:  .word 0
)";
}

struct WatchSystem {
  std::unique_ptr<Sim> sim;
  Pid pid = 0;
  uint32_t hot = 0;
};

WatchSystem MakeSystem(int gap) {
  WatchSystem s;
  s.sim = std::make_unique<Sim>();
  auto img = s.sim->InstallProgram("/bin/w", Workload(gap));
  s.pid = *s.sim->Start("/bin/w");
  s.hot = *img->SymbolValue("hot");
  return s;
}

void BM_WatchpointFacility(benchmark::State& state) {
  auto s = MakeSystem(static_cast<int>(state.range(0)));
  auto h = *ProcHandle::Grab(s.sim->kernel(), s.sim->controller(), s.pid);
  (void)h.Stop();
  FltSet faults;
  faults.Add(FLTWATCH);
  faults.Add(FLTTRACE);  // for the single-step that lets the store through
  (void)h.SetFltTrace(faults);
  (void)h.SetWatch(PrWatch{s.hot, 4, WA_WRITE});
  (void)h.Run();
  for (auto _ : state) {
    (void)h.WaitStop();  // fires only on the real store
    PrRun r;
    r.pr_flags = PRCFAULT;
    // Let the store through: clear the watch, step, re-arm.
    (void)h.ClearWatch(s.hot);
    r.pr_flags |= PRSTEP;
    (void)h.Run(r);
    (void)h.WaitStop();
    (void)h.SetWatch(PrWatch{s.hot, 4, WA_WRITE});
    PrRun r2;
    r2.pr_flags = PRCFAULT;
    (void)h.Run(r2);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("watch hits");
  state.counters["gap"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WatchpointFacility)->Arg(10)->Arg(100)->Arg(1000);

void BM_SingleStepEmulation(benchmark::State& state) {
  auto s = MakeSystem(static_cast<int>(state.range(0)));
  auto h = *ProcHandle::Grab(s.sim->kernel(), s.sim->controller(), s.pid);
  (void)h.Stop();
  FltSet faults;
  faults.Add(FLTTRACE);
  (void)h.SetFltTrace(faults);
  uint32_t last = 0;
  (void)h.ReadMem(s.hot, &last, 4);
  for (auto _ : state) {
    // Step instruction by instruction until the word changes.
    for (;;) {
      PrRun r;
      r.pr_flags = PRSTEP | PRCFAULT;
      (void)h.Run(r);
      (void)h.WaitStop();
      uint32_t now = 0;
      (void)h.ReadMem(s.hot, &now, 4);
      if (now != last) {
        last = now;
        break;
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("watch hits");
  state.counters["gap"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SingleStepEmulation)->Arg(10)->Arg(100);

}  // namespace

SVR4_BENCH_MAIN("tbl_watchpoints")
