// T-PS: "the PIOCPSINFO operation returns everything that ps might want to
// display about a process ... Because all the information for a process is
// obtained in a single operation, each line of ps output is a true snapshot."
// Compares the one-operation snapshot with a ptrace-era style extraction
// that assembles the same record from many small operations.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_json.h"

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/ps.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

std::unique_ptr<Sim> MakeSystem(int nprocs) {
  auto sim = std::make_unique<Sim>();
  (void)sim->InstallProgram("/bin/worker", R"(
loop: ldi r0, SYS_getpid
      sys
      jmp loop
  )");
  for (int i = 0; i < nprocs; ++i) {
    (void)sim->kernel().Spawn("/bin/worker", {"worker"}, Creds::Root());
  }
  for (int i = 0; i < 100; ++i) {
    sim->kernel().Step();
  }
  return sim;
}

// One PIOCPSINFO per process: the paper's ps.
void BM_PsOneOpPerProcess(benchmark::State& state) {
  auto sim = MakeSystem(static_cast<int>(state.range(0)));
  uint64_t ops = 0;
  for (auto _ : state) {
    auto snap = PsSnapshot(sim->kernel(), sim->controller());
    ops += snap->size();  // one control operation per line
    benchmark::DoNotOptimize(snap->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));  // lines == ops here
  state.counters["ctl_ops_per_line"] = 1;
}
BENCHMARK(BM_PsOneOpPerProcess)->Arg(8)->Arg(32)->Arg(128);

// Assembling the same line from piecemeal operations (credentials, map for
// the size, registers, raw proc structure) — what a ps without PIOCPSINFO
// would have to do, with no snapshot consistency.
void BM_PsPiecemeal(benchmark::State& state) {
  auto sim = MakeSystem(static_cast<int>(state.range(0)));
  uint64_t ops = 0;
  uint64_t lines = 0;
  for (auto _ : state) {
    auto ents = sim->kernel().ReadDir(sim->controller(), "/proc");
    for (const auto& e : *ents) {
      Pid pid = static_cast<Pid>(std::strtol(e.name.c_str(), nullptr, 10));
      auto h = ProcHandle::Grab(sim->kernel(), sim->controller(), pid, O_RDONLY);
      if (!h.ok()) {
        continue;
      }
      PrRawProc raw;
      (void)sim->kernel().Ioctl(sim->controller(), h->fd(), PIOCGETPR, &raw);
      PrRawUser u;
      (void)sim->kernel().Ioctl(sim->controller(), h->fd(), PIOCGETU, &u);
      auto cred = h->Cred();
      auto maps = h->GetMap();  // to total up the size
      auto usage = h->Usage();
      benchmark::DoNotOptimize(raw.p_pid);
      benchmark::DoNotOptimize(cred->pr_ruid);
      benchmark::DoNotOptimize(maps->size());
      benchmark::DoNotOptimize(usage->pr_utime);
      ops += 6;  // six operations (incl. PIOCNMAP inside GetMap) per line
      ++lines;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(lines));  // compare per-line rates
  state.counters["ctl_ops_per_line"] = 6;
}
BENCHMARK(BM_PsPiecemeal)->Arg(8)->Arg(32)->Arg(128);

// --- Scale axis: per-process snapshot cost vs population size ----------------
// Populations are built from native processes (host-driven, no address
// space): what the scale axis measures is table and snapshot machinery, not
// simulated execution. items_per_second is the per-line rate — flat across
// the axis when lookup, readdir, and snapshot are all O(1) per process.

std::unique_ptr<Sim> MakePopulation(int nprocs) {
  auto sim = std::make_unique<Sim>();
  for (int i = 0; i < nprocs; ++i) {
    (void)sim->kernel().CreateNativeProc(Creds::Root(), "worker");
  }
  return sim;
}

void ScaleArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1'000)->Arg(10'000)->Arg(100'000);
  // The 10^6 point takes minutes on the per-pid path; opt in explicitly.
  if (std::getenv("SVR4PROC_BENCH_HUGE") != nullptr) {
    b->Arg(1'000'000);
  }
  b->Unit(benchmark::kMillisecond);
}

// The paper's ps loop at scale: chunked readdir, then one open + PIOCPSINFO
// + close per process.
void BM_PsOneOpPerProcessScale(benchmark::State& state) {
  auto sim = MakePopulation(static_cast<int>(state.range(0)));
  uint64_t lines = 0;
  for (auto _ : state) {
    auto snap = PsSnapshot(sim->kernel(), sim->controller());
    lines += snap->size();
    benchmark::DoNotOptimize(snap->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(lines));
}
BENCHMARK(BM_PsOneOpPerProcessScale)->Apply(ScaleArgs);

// The bulk path: one PIOCPSALL returns the whole population.
void BM_PsBulkSnapshot(benchmark::State& state) {
  auto sim = MakePopulation(static_cast<int>(state.range(0)));
  uint64_t lines = 0;
  for (auto _ : state) {
    auto snap = PsSnapshotAll(sim->kernel(), sim->controller());
    lines += snap->size();
    benchmark::DoNotOptimize(snap->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(lines));
}
BENCHMARK(BM_PsBulkSnapshot)->Apply(ScaleArgs);

}  // namespace

SVR4_BENCH_MAIN("tbl_ps_snapshot")
